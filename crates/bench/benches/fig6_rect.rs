//! Figure 6 bench: DGEFMM vs DGEMMW on rectangular problems where the
//! hybrid criterion gains an extra recursion level.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use matrix::random;
use strassen::comparators::dgemmw;
use strassen::{dgefmm_with_workspace, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let t = p.tuned;
    let shapes = [(t.tau * 3 / 4, t.tau * 2, t.tau * 2), (t.tau * 2, t.tau / 2, t.tau * 2)];
    let (alpha, beta) = (0.7, 0.3);
    let mut g = c.benchmark_group("fig6_rect");
    for (m, k, n) in shapes {
        let a = random::uniform::<f64>(m, k, 1);
        let b = random::uniform::<f64>(k, n, 2);
        let mut out = random::uniform::<f64>(m, n, 3);
        let cfg = p.dgefmm_config();
        let mut ws = Workspace::<f64>::for_problem(&cfg, m, k, n, false);
        g.bench_function(format!("dgefmm/{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &cfg,
                    alpha,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    beta,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
        g.bench_function(format!("dgemmw/{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                dgemmw::dgemmw(
                    t.tau,
                    p.gemm,
                    alpha,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    beta,
                    out.as_mut(),
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
