//! Table 6 bench: the ISDA eigensolver with DGEMM vs DGEFMM kernels.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use eigen::backend::{GemmBackend, StrassenBackend};
use eigen::isda::{isda_eigen, IsdaOptions};
use matrix::random;

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let n = 160usize;
    let evals: Vec<f64> = (0..n).map(|i| i as f64 * 0.4 - 20.0).collect();
    let a = random::symmetric_with_spectrum::<f64>(&evals, 7);
    let opts = IsdaOptions::default();
    let mut g = c.benchmark_group("table6_eigensolver");
    g.sample_size(10);
    let gb = GemmBackend(p.gemm);
    g.bench_function("isda_dgemm", |bch| bch.iter(|| isda_eigen(&a, &gb, &opts)));
    let sb = StrassenBackend::new(p.dgefmm_config());
    g.bench_function("isda_dgefmm", |bch| bch.iter(|| isda_eigen(&a, &sb, &opts)));
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
