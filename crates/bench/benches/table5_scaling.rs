//! Table 5 bench: DGEMM vs DGEFMM at the smallest orders doing 1 and 2
//! recursions (alpha = 1/3, beta = 1/4).

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use blas::level3::gemm;
use matrix::random;
use strassen::{dgefmm_with_workspace, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let cfg = p.dgefmm_config();
    let (alpha, beta) = (1.0 / 3.0, 0.25);
    let mut g = c.benchmark_group("table5_scaling");
    g.sample_size(10);
    for recs in [1usize, 2] {
        let m = (p.tuned.tau + 1) << (recs - 1);
        let a = random::uniform::<f64>(m, m, 1);
        let b = random::uniform::<f64>(m, m, 2);
        let mut out = random::uniform::<f64>(m, m, 3);
        g.bench_function(format!("dgemm/{m}"), |bch| {
            bch.iter(|| {
                gemm(&p.gemm, alpha, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), beta, out.as_mut())
            })
        });
        let mut ws = Workspace::<f64>::for_problem(&cfg, m, m, m, false);
        g.bench_function(format!("dgefmm/{m}"), |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &cfg,
                    alpha,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    beta,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
