//! Figure 2 bench: plain GEMM vs one level of Strassen around the
//! crossover, blocked-kernel profile.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use blas::level3::gemm;
use matrix::{random, Matrix};
use strassen::tuning::one_level_config;
use strassen::{dgefmm_with_workspace, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let mut g = c.benchmark_group("fig2_square_cutoff");
    for m in [256usize, 416, 512] {
        let a = random::uniform::<f64>(m, m, 1);
        let b = random::uniform::<f64>(m, m, 2);
        let mut out = Matrix::<f64>::zeros(m, m);
        g.bench_function(format!("dgemm/{m}"), |bch| {
            bch.iter(|| {
                gemm(&p.gemm, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, out.as_mut())
            })
        });
        let one = one_level_config(p.gemm);
        let mut ws = Workspace::<f64>::for_problem(&one, m, m, m, true);
        g.bench_function(format!("dgefmm_one_level/{m}"), |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &one,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    0.0,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
