//! Table 4 bench: the same rectangular problem under the three cutoff
//! criteria. The shape has one dimension below the square cutoff, so the
//! simple criterion refuses to recurse while the hybrid one gains a level.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use matrix::{random, Matrix};
use strassen::{dgefmm_with_workspace, CutoffCriterion, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let t = p.tuned;
    // m below tau, k and n large: the paper's motivating shape.
    let (m, k, n) = (t.tau * 3 / 4, t.tau * 2, t.tau * 2);
    let a = random::uniform::<f64>(m, k, 1);
    let b = random::uniform::<f64>(k, n, 2);
    let mut out = Matrix::<f64>::zeros(m, n);
    let mut g = c.benchmark_group("table4_criteria");
    for (name, crit) in [
        ("simple_eq11", CutoffCriterion::Simple { tau: t.tau }),
        ("higham_eq12", CutoffCriterion::HighamScaled { tau: t.tau }),
        ("hybrid_eq15", t.criterion()),
    ] {
        let cfg = p.dgefmm_config().cutoff(crit);
        let mut ws = Workspace::<f64>::for_problem(&cfg, m, k, n, true);
        g.bench_function(name, |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &cfg,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    0.0,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
