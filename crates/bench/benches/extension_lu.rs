//! Extension bench: Strassen-accelerated blocked LU (the dense-solve use
//! case of the paper's reference [3]).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn cfg() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

use bench::profiles::rs6000_like;
use linsys::lu::lu_factor;
use matrix::random;
use strassen::{GemmBackend, StrassenBackend};

fn bench(c: &mut Criterion) {
    let p = rs6000_like();
    let n = 512usize;
    let nb = 64usize;
    let a = random::uniform::<f64>(n, n, 1);
    let mut g = c.benchmark_group("extension_lu");
    let gb = GemmBackend(p.gemm);
    g.bench_function("lu_dgemm", |bch| bch.iter(|| lu_factor(&a, nb, &gb).unwrap()));
    let sb = StrassenBackend::new(p.dgefmm_config());
    g.bench_function("lu_dgefmm", |bch| bch.iter(|| lu_factor(&a, nb, &sb).unwrap()));
    g.finish();
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
