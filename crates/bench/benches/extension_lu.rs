//! Extension bench: Strassen-accelerated blocked LU (the dense-solve use
//! case of the paper's reference \[3\]).

use bench::micro::Harness;
use bench::profiles::rs6000_like;
use linsys::lu::lu_factor;
use matrix::random;
use strassen::{GemmBackend, StrassenBackend};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let n = 512usize;
    let nb = 64usize;
    let a = random::uniform::<f64>(n, n, 1);
    let mut g = c.benchmark_group("extension_lu");
    let gb = GemmBackend(p.gemm);
    g.bench_function("lu_dgemm", |bch| bch.iter(|| lu_factor(&a, nb, &gb).unwrap()));
    let sb = StrassenBackend::new(p.dgefmm_config());
    g.bench_function("lu_dgefmm", |bch| bch.iter(|| lu_factor(&a, nb, &sb).unwrap()));
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
