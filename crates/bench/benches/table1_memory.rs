//! Table 1 bench: the three schedules at one size — shows that the
//! low-memory schedules cost no time (the memory numbers themselves are
//! printed by `experiments table1`).

use bench::micro::Harness;

use blas::level2::Op;
use matrix::{random, Matrix};
use strassen::{dgefmm_with_workspace, CutoffCriterion, Scheme, StrassenConfig, Workspace};

fn bench(c: &mut Harness) {
    let m = 384usize;
    let a = random::uniform::<f64>(m, m, 1);
    let b = random::uniform::<f64>(m, m, 2);
    let mut out = Matrix::<f64>::zeros(m, m);
    let base = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 96 });
    let mut g = c.benchmark_group("table1_schedules");
    for (name, scheme, beta) in [
        ("strassen1_beta0", Scheme::Strassen1, 0.0),
        ("strassen2_beta0", Scheme::Strassen2, 0.0),
        ("strassen2_general", Scheme::Strassen2, 0.5),
        ("seven_temp_beta0", Scheme::SevenTemp, 0.0),
    ] {
        let cfg = base.scheme(scheme);
        eprintln!(
            "{name}: workspace = {} elements",
            strassen::required_workspace(&cfg, m, m, m, beta == 0.0)
        );
        let mut ws = Workspace::<f64>::for_problem(&cfg, m, m, m, beta == 0.0);
        g.bench_function(name, |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &cfg,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    beta,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
