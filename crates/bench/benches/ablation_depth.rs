//! Ablation: benefit per recursion level (max_depth sweep) — the runtime
//! analog of the paper's 38.2%-from-cutoffs observation.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use matrix::{random, Matrix};
use strassen::{dgefmm_with_workspace, CutoffCriterion, StrassenConfig, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let m = 832usize;
    let a = random::uniform::<f64>(m, m, 1);
    let b = random::uniform::<f64>(m, m, 2);
    let mut out = Matrix::<f64>::zeros(m, m);
    let mut g = c.benchmark_group("ablation_depth");
    g.sample_size(10);
    for depth in 0usize..=3 {
        let cfg = StrassenConfig::dgefmm().gemm(p.gemm).cutoff(CutoffCriterion::Never).max_depth(depth);
        let mut ws = Workspace::<f64>::for_problem(&cfg, m, m, m, true);
        g.bench_function(format!("depth_{depth}"), |bch| {
            bch.iter(|| {
                dgefmm_with_workspace(
                    &cfg,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    0.0,
                    out.as_mut(),
                    &mut ws,
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
