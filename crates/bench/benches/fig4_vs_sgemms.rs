//! Figure 4 bench: DGEFMM vs the SGEMMS analog.

use bench::micro::Harness;

use bench::profiles::rs6000_like;
use blas::level2::Op;
use matrix::random;
use strassen::comparators::sgemms;
use strassen::{dgefmm_with_workspace, Workspace};

fn bench(c: &mut Harness) {
    let p = rs6000_like();
    let tau = p.tuned.tau;
    let m = tau + tau / 2;
    let (alpha, beta) = (0.7, 0.3);
    let a = random::uniform::<f64>(m, m, 1);
    let b = random::uniform::<f64>(m, m, 2);
    let mut out = random::uniform::<f64>(m, m, 3);
    let mut g = c.benchmark_group("fig4_vs_sgemms");
    let cfg = p.dgefmm_config();
    let mut ws = Workspace::<f64>::for_problem(&cfg, m, m, m, false);
    g.bench_function(format!("dgefmm/{m}"), |bch| {
        bch.iter(|| {
            dgefmm_with_workspace(
                &cfg,
                alpha,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                beta,
                out.as_mut(),
                &mut ws,
            )
        })
    });
    g.bench_function(format!("sgemms/{m}"), |bch| {
        bch.iter(|| {
            sgemms::sgemms(
                tau,
                p.gemm,
                alpha,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                beta,
                out.as_mut(),
            )
        })
    });
    g.finish();
}

fn main() {
    bench(&mut Harness::from_env());
}
