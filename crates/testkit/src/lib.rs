//! Deterministic property-test harness.
//!
//! The in-tree replacement for the `proptest` subset this workspace
//! uses. A property is a closure over a [`Gen`] that draws its inputs
//! and asserts with the ordinary `assert!` family; [`check`] runs it for
//! a fixed number of cases with seeds derived deterministically from a
//! master seed, so *two consecutive runs produce identical
//! failures/successes* — the reproducibility contract the experiment
//! harness already makes for its matrices, extended to the test suite.
//!
//! ```
//! testkit::check("add_commutes", 64, |g| {
//!     let a = g.usize_in(0, 1000) as u64;
//!     let b = g.u64_in(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! - **Seeding.** The master seed is `TESTKIT_SEED` (env) or a fixed
//!   default. Per-case seeds come from a SplitMix64 stream over the
//!   master seed and the property name, so adding cases to one property
//!   never perturbs another.
//! - **Shrinking-lite.** Generators are *size-scaled*: every drawn range
//!   is shrunk toward its lower bound by a factor in `(0, 1]`. On
//!   failure the harness replays the failing case at increasing sizes
//!   (0.0, 0.05, …) and reports the smallest size that still fails —
//!   typically turning a 90×90 counterexample into the minimal few-cell
//!   one. Not per-value shrinking, but it needs no value DAG and keeps
//!   generation imperative.
//! - **Comparators.** [`assert_close`] (ulp-based scalar comparison) and
//!   [`assert_frob_close`] (relative Frobenius distance for matrices)
//!   are panic-carrying so they compose with [`check`].

#![warn(missing_docs)]

pub mod json;

use matrix::{norms, MatRef, Scalar};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default master seed when `TESTKIT_SEED` is unset. Spells "d1ce 5eed".
pub const DEFAULT_SEED: u64 = 0xD1CE_5EED;

/// The master seed in force: `TESTKIT_SEED` (decimal or `0x…` hex) or
/// [`DEFAULT_SEED`].
pub fn master_seed() -> u64 {
    match std::env::var("TESTKIT_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed =
                if let Some(hex) = v.strip_prefix("0x") { u64::from_str_radix(hex, 16) } else { v.parse() };
            parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED is not an integer: {v:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Deterministic per-property stream offset: a tiny FNV-1a over the
/// property name, so properties draw independent case-seed streams.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Case-input generator: seeded draws, every range scaled by the shrink
/// `size` toward its lower bound.
pub struct Gen {
    rng: rng::Rng,
    size: f64,
}

impl Gen {
    /// Generator for one case. `size` in `(0, 1]` scales range widths
    /// (1.0 = full ranges; smaller = shrunken replay).
    pub fn new(case_seed: u64, size: f64) -> Self {
        Self { rng: rng::Rng::seed_from_u64(case_seed), size: size.clamp(0.0, 1.0) }
    }

    /// Scale a range width by the current size, keeping at least 1.
    fn scaled(&self, width: u64) -> u64 {
        if width <= 1 {
            return width;
        }
        ((width as f64 * self.size).ceil() as u64).clamp(1, width)
    }

    /// Uniform `usize` in `[lo, hi)` (width size-scaled toward `lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range [{lo}, {hi})");
        lo + self.rng.bounded_u64(self.scaled((hi - lo) as u64)) as usize
    }

    /// Uniform `usize` in `[lo, hi]` (width size-scaled toward `lo`).
    pub fn usize_in_incl(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "usize_in_incl: empty range [{lo}, {hi}]");
        self.usize_in(lo, hi + 1)
    }

    /// Uniform *odd* `usize` in `[lo, hi)` (width size-scaled toward the
    /// smallest odd value ≥ `lo`). The differential fuzzer uses this to
    /// force dynamic-peeling/padding paths while keeping shrinking
    /// meaningful: a shrunken case is still odd.
    pub fn odd_usize_in(&mut self, lo: usize, hi: usize) -> usize {
        let lo_odd = lo | 1;
        assert!(lo_odd < hi, "odd_usize_in: no odd value in [{lo}, {hi})");
        // Draw the odd index, then map back: lo_odd + 2·i.
        let slots = (hi - lo_odd).div_ceil(2);
        lo_odd + 2 * self.usize_in(0, slots)
    }

    /// Uniform `u64` in `[lo, hi)` (width size-scaled toward `lo`).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in: empty range [{lo}, {hi})");
        lo + self.rng.bounded_u64(self.scaled(hi - lo))
    }

    /// Uniform `f64` in `[lo, hi)` (width size-scaled toward `lo`).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_in: empty range [{lo}, {hi})");
        let hi_eff = lo + (hi - lo) * self.size.max(1e-3);
        rng::Uniform::new(lo, hi_eff).sample(&mut self.rng)
    }

    /// Fair coin (not size-scaled; both branches stay reachable while
    /// shrinking).
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool()
    }

    /// Uniformly chosen element of a non-empty slice (not size-scaled:
    /// enum-like choices must stay exhaustive under shrinking).
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        *self.rng.choose(items)
    }

    /// A fresh 64-bit seed, for feeding `matrix::random` generators.
    pub fn seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Direct access to the underlying generator for anything else.
    pub fn rng(&mut self) -> &mut rng::Rng {
        &mut self.rng
    }

    /// The shrink size this case is running at.
    pub fn size(&self) -> f64 {
        self.size
    }
}

/// Case budget from an environment variable (decimal), or `default`.
///
/// The fuzzer reads `FUZZ_ITERS` through this so CI can pin a fixed
/// budget (`scripts/verify.sh` runs 256 cases) while local runs scale it
/// up for soak testing.
pub fn cases_from_env(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| panic!("{var} is not an integer: {v:?}")),
        Err(_) => default,
    }
}

/// Shrink sizes tried after a failure, smallest first.
const SHRINK_SIZES: [f64; 7] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75];

/// Run `prop` for `cases` deterministic cases. Panics (with replay
/// instructions) on the first failing case, after a shrink pass.
///
/// Failures inside `prop` are ordinary panics — `assert!`, indexing,
/// arithmetic overflow — caught per case.
pub fn check<F>(name: &str, cases: usize, prop: F)
where
    F: Fn(&mut Gen),
{
    let master = master_seed();
    let mut stream = rng::SplitMix64::new(master ^ name_hash(name));
    for case in 0..cases {
        let case_seed = stream.next_u64();
        if let Err(payload) = run_case(&prop, case_seed, 1.0) {
            // Shrink: replay this seed at growing sizes; the first
            // (smallest) size that still fails is the minimal report.
            let mut smallest: (f64, Box<dyn std::any::Any + Send>) = (1.0, payload);
            for &size in SHRINK_SIZES.iter() {
                if let Err(p) = run_case(&prop, case_seed, size) {
                    smallest = (size, p);
                    break;
                }
            }
            let (size, payload) = smallest;
            panic!(
                "[testkit] property '{name}' failed at case {case}/{cases} \
                 (master seed {master:#x}, case seed {case_seed:#x}, shrunk to size {size})\n\
                 cause: {}\n\
                 replay: TESTKIT_SEED={master:#x} cargo test, \
                 or testkit::replay({case_seed:#x}, {size:?}, prop)",
                payload_message(&payload),
            );
        }
    }
}

/// Replay one exact case (for debugging a `check` failure report).
pub fn replay<F>(case_seed: u64, size: f64, prop: F)
where
    F: Fn(&mut Gen),
{
    if let Err(p) = run_case(&prop, case_seed, size) {
        resume_unwind(p);
    }
}

/// Recover `(case_seed, shrunk_size)` from a [`check`] failure report, so
/// a harness that caught the panic can machine-replay the minimal
/// reproducer with [`replay`]. Returns `None` for panics that did not
/// come from this harness.
pub fn parse_failure(report: &str) -> Option<(u64, f64)> {
    let seed_at = report.find("case seed 0x")? + "case seed 0x".len();
    let seed_hex: String = report[seed_at..].chars().take_while(char::is_ascii_hexdigit).collect();
    let seed = u64::from_str_radix(&seed_hex, 16).ok()?;
    let size_at = report.find("shrunk to size ")? + "shrunk to size ".len();
    let size_str: String =
        report[size_at..].chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    Some((seed, size_str.parse().ok()?))
}

fn run_case<F>(prop: &F, case_seed: u64, size: f64) -> Result<(), Box<dyn std::any::Any + Send>>
where
    F: Fn(&mut Gen),
{
    catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::new(case_seed, size);
        prop(&mut g);
    }))
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Distance in representable values ("units in the last place") between
/// two finite floats of the same sign convention. NaNs and opposite-sign
/// non-zero pairs return `u64::MAX`.
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the double line monotonically onto u64 (sign-magnitude to
    // offset binary), making ulp distance a plain integer difference.
    fn key(x: f64) -> i128 {
        let bits = x.to_bits() as i64;
        let k = if bits < 0 { i64::MIN.wrapping_sub(bits) } else { bits };
        k as i128
    }
    let d = (key(a) - key(b)).unsigned_abs();
    u64::try_from(d).unwrap_or(u64::MAX)
}

/// Largest [`ulp_diff`] over all entries of two same-shaped `f64`
/// matrices — the max-ulp distance metric the accuracy oracle reports.
pub fn max_ulp_diff_mat(a: MatRef<'_, f64>, b: MatRef<'_, f64>) -> u64 {
    assert_eq!(a.nrows(), b.nrows(), "max_ulp_diff_mat: row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "max_ulp_diff_mat: col mismatch");
    let mut worst = 0u64;
    for j in 0..a.ncols() {
        for (x, y) in a.col(j).iter().zip(b.col(j)) {
            worst = worst.max(ulp_diff(*x, *y));
        }
    }
    worst
}

/// Assert two scalars are within `max_ulps` representable values of each
/// other (exact equality for zero tolerance).
#[track_caller]
pub fn assert_close(a: f64, b: f64, max_ulps: u64) {
    let d = ulp_diff(a, b);
    assert!(d <= max_ulps, "assert_close: {a:e} vs {b:e} differ by {d} ulps (allowed {max_ulps})");
}

/// Assert `|a − b| ≤ abs_tol + rel_tol · max(|a|, |b|)` — the mixed
/// absolute/relative form for quantities that may be near zero.
#[track_caller]
pub fn assert_close_tol(a: f64, b: f64, abs_tol: f64, rel_tol: f64) {
    let diff = (a - b).abs();
    let bound = abs_tol + rel_tol * a.abs().max(b.abs());
    assert!(diff <= bound, "assert_close_tol: {a:e} vs {b:e}, |Δ| = {diff:e} > {bound:e}");
}

/// Assert the relative Frobenius distance `‖got − want‖_F / ‖want‖_F`
/// (absolute when `want` is zero) is at most `tol`, with a context
/// string for the failure report.
#[track_caller]
pub fn assert_frob_close<T: Scalar>(got: MatRef<'_, T>, want: MatRef<'_, T>, tol: f64, ctx: &str) {
    assert_eq!(got.nrows(), want.nrows(), "assert_frob_close[{ctx}]: row mismatch");
    assert_eq!(got.ncols(), want.ncols(), "assert_frob_close[{ctx}]: col mismatch");
    let diff = norms::rel_diff(got, want);
    assert!(diff <= tol, "assert_frob_close[{ctx}]: relative Frobenius diff {diff:.3e} > tol {tol:.3e}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = AtomicUsize::new(0);
        check("always_true", 37, |g| {
            let _ = g.usize_in(0, 10);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("big_is_small", 50, |g| {
                let n = g.usize_in(1, 100);
                assert!(n < 2, "n = {n}");
            });
        }));
        let msg = payload_message(&result.unwrap_err());
        assert!(msg.contains("[testkit] property 'big_is_small'"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
        // The shrink pass replays at size 0.0, where usize_in(1, 100)
        // collapses to 1 — still failing (1 < 2 is true… n=1 passes!).
        // So the smallest failing size is one where n ≥ 2 is reachable.
        assert!(msg.contains("shrunk to size"), "{msg}");
    }

    #[test]
    fn case_seeds_are_deterministic_across_runs() {
        let first: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        check("seed_stream", 10, |g| {
            first.lock().unwrap().push(g.seed());
        });
        let second: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        check("seed_stream", 10, |g| {
            second.lock().unwrap().push(g.seed());
        });
        assert_eq!(*first.lock().unwrap(), *second.lock().unwrap());
    }

    #[test]
    fn different_properties_draw_different_streams() {
        let a = AtomicU64::new(0);
        check("stream_a", 1, |g| {
            a.store(g.seed(), Ordering::Relaxed);
        });
        let b = AtomicU64::new(0);
        check("stream_b", 1, |g| {
            b.store(g.seed(), Ordering::Relaxed);
        });
        assert_ne!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
    }

    #[test]
    fn gen_ranges_honor_bounds_at_all_sizes() {
        for &size in &[0.0, 0.3, 1.0] {
            let mut g = Gen::new(99, size);
            for _ in 0..500 {
                let x = g.usize_in(3, 30);
                assert!((3..30).contains(&x));
                let y = g.f64_in(-2.0, 2.0);
                assert!((-2.0..2.0).contains(&y));
                let z = g.usize_in_incl(5, 5);
                assert_eq!(z, 5);
            }
        }
    }

    #[test]
    fn smaller_size_shrinks_ranges_toward_lo() {
        let mut g = Gen::new(7, 0.0);
        for _ in 0..100 {
            // At size 0 every integer range collapses to its minimum.
            assert_eq!(g.usize_in(4, 90), 4);
        }
    }

    #[test]
    fn pick_and_bool_reach_everything_even_when_shrunk() {
        let mut g = Gen::new(12, 0.0);
        let mut seen = [false; 3];
        let mut seen_bool = [false; 2];
        for _ in 0..200 {
            seen[g.pick(&[0usize, 1, 2])] = true;
            seen_bool[g.bool() as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert_eq!(seen_bool, [true; 2]);
    }

    #[test]
    fn odd_draws_are_odd_and_in_range() {
        for &size in &[0.0, 0.4, 1.0] {
            let mut g = Gen::new(31, size);
            for _ in 0..300 {
                let x = g.odd_usize_in(4, 40);
                assert!(x % 2 == 1 && (5..40).contains(&x), "{x}");
                // Degenerate one-slot range.
                assert_eq!(g.odd_usize_in(7, 8), 7);
            }
        }
        // At size 0 the draw collapses to the smallest odd value.
        let mut g = Gen::new(31, 0.0);
        assert_eq!(g.odd_usize_in(4, 40), 5);
    }

    #[test]
    fn failure_report_round_trips_through_parse_failure() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("parse_me", 20, |g| {
                let n = g.usize_in(1, 100);
                assert!(n < 3, "n = {n}");
            });
        }));
        let msg = payload_message(&result.unwrap_err());
        let (seed, size) = parse_failure(&msg).expect("report must be parseable");
        // The recovered coordinates replay to the same failure.
        let replayed = catch_unwind(AssertUnwindSafe(|| {
            replay(seed, size, |g| {
                let n = g.usize_in(1, 100);
                assert!(n < 3, "n = {n}");
            });
        }));
        assert!(replayed.is_err(), "parsed (seed, size) must reproduce the failure");
        assert_eq!(parse_failure("some unrelated panic"), None);
    }

    #[test]
    fn cases_from_env_reads_override() {
        assert_eq!(cases_from_env("TESTKIT_NO_SUCH_VAR", 64), 64);
        std::env::set_var("TESTKIT_CASES_TEST_VAR", "17");
        assert_eq!(cases_from_env("TESTKIT_CASES_TEST_VAR", 64), 17);
        std::env::remove_var("TESTKIT_CASES_TEST_VAR");
    }

    #[test]
    fn matrix_ulp_metric() {
        use matrix::Matrix;
        let a = Matrix::<f64>::identity(3);
        let mut b = a.clone();
        assert_eq!(max_ulp_diff_mat(a.as_ref(), b.as_ref()), 0);
        b.set(2, 2, f64::from_bits(1.0f64.to_bits() + 3));
        assert_eq!(max_ulp_diff_mat(a.as_ref(), b.as_ref()), 3);
    }

    #[test]
    fn ulp_metric() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
        assert!(ulp_diff(1.0, -1.0) > 1u64 << 50);
        assert_close(1.0, 1.0 + f64::EPSILON, 5);
        assert_close_tol(1e-30, 0.0, 1e-12, 0.0);
    }

    #[test]
    fn frobenius_comparator() {
        use matrix::Matrix;
        let a = Matrix::<f64>::identity(4);
        let mut b = a.clone();
        assert_frob_close(a.as_ref(), b.as_ref(), 0.0, "identical");
        b.set(0, 0, 1.0 + 1e-14);
        assert_frob_close(a.as_ref(), b.as_ref(), 1e-12, "close");
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut c = a.clone();
            c.set(0, 0, 2.0);
            assert_frob_close(a.as_ref(), c.as_ref(), 1e-12, "far");
        }));
        assert!(r.is_err());
    }
}
