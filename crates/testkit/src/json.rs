//! Minimal JSON reader for golden-schema tests.
//!
//! The workspace's exporters hand-roll their JSON (no serde), so the
//! test suite needs an independent reader to validate them — one that
//! shares no code with the writer, or a balanced-brace bug could hide on
//! both sides. This is a strict recursive-descent parser over the JSON
//! grammar: the whole input must be one value, every number must parse
//! to a *finite* `f64` (the schema contract), and no extensions (NaN,
//! comments, trailing commas) are accepted.
//!
//! Numbers keep their raw text: flop counts are exact integers that can
//! exceed an `f64`'s 2⁵³ integer range, and a golden test comparing them
//! against a `u128` closed form must not round through a double.
//!
//! ```
//! use testkit::json::Json;
//!
//! let doc = Json::parse(r#"{"schema":1,"phases":[{"ns":42}]}"#).unwrap();
//! assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1));
//! assert_eq!(doc.get("phases").unwrap().at(0).unwrap().get("ns").unwrap().as_u64(), Some(42));
//! ```

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (always a valid, finite JSON
    /// number — validated at parse time).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order (duplicate keys are rejected).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse `input` as exactly one JSON document.
    ///
    /// Errors carry a byte offset and a short reason.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` (always finite), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u128` — exact for flop counts beyond the `f64`
    /// integer range.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Follow a `.`-separated path of object keys and `[i]` indexes,
    /// e.g. `"profile.phases[0].ns"`.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for part in path.split('.') {
            let (key, indexes) = match part.find('[') {
                Some(b) => (&part[..b], &part[b..]),
                None => (part, ""),
            };
            if !key.is_empty() {
                node = node.get(key)?;
            }
            for idx in indexes.split_terminator(']') {
                node = node.at(idx.strip_prefix('[')?.parse().ok()?)?;
            }
        }
        Some(node)
    }
}

/// Validate a parsed `strassen_profile_report` document against the
/// versioned schema contract and return its schema number.
///
/// Accepts schema **1** (PR-7-era reports still on disk under
/// `results/`) and schema **2** (adds the optional `timeline` event-ring
/// summary and `hw_counters` sections). Anything else — wrong `kind`,
/// unknown schema number, missing required sections, flop-count drift
/// between the trace and profile layers, or malformed optional sections
/// — is an error naming the offending part.
pub fn validate_profile_report(doc: &Json) -> Result<u64, String> {
    let kind = doc.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
    if kind != "strassen_profile_report" {
        return Err(format!("unexpected kind {kind:?}"));
    }
    let schema = doc.get("schema").and_then(Json::as_u64).ok_or("missing schema")?;
    if !(1..=2).contains(&schema) {
        return Err(format!("unsupported schema {schema}"));
    }

    // Required in every schema: trace and profile with their arrays and
    // consistent flop accounting.
    for section in ["trace.levels", "profile.phases", "profile.levels"] {
        if doc.path(section).and_then(Json::items).is_none() {
            return Err(format!("missing or non-array section {section}"));
        }
    }
    let trace_flops =
        doc.path("trace.total_flops").and_then(Json::as_u128).ok_or("missing trace.total_flops")?;
    let model_flops =
        doc.path("profile.model_flops").and_then(Json::as_u128).ok_or("missing profile.model_flops")?;
    if trace_flops != model_flops {
        return Err(format!("flop accounting drift: trace {trace_flops} vs profile {model_flops}"));
    }

    // Optional pool section (any schema).
    if let Some(pool) = doc.get("pool") {
        if pool.get("workers").and_then(Json::items).is_none() {
            return Err("pool present but pool.workers is not an array".into());
        }
    }

    // The schema-2 sections; a schema-1 document must not carry them.
    let timeline = doc.get("timeline");
    let hw = doc.get("hw_counters");
    if schema == 1 && (timeline.is_some() || hw.is_some()) {
        return Err("schema 1 cannot carry timeline/hw_counters sections".into());
    }
    if let Some(tl) = timeline {
        for key in ["workers", "lanes", "events", "dropped", "tasks", "edges"] {
            if tl.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("timeline.{key} missing or not an unsigned integer"));
            }
        }
        let levels = tl.get("levels").and_then(Json::items).ok_or("timeline.levels not an array")?;
        for (i, level) in levels.iter().enumerate() {
            if level.get("level").and_then(Json::as_u64).is_none()
                || level.get("tasks").and_then(Json::as_u64).is_none()
            {
                return Err(format!("timeline.levels[{i}] needs level + tasks"));
            }
        }
    }
    if let Some(counters) = hw {
        let items = counters.items().ok_or("hw_counters is not an array")?;
        for (i, counter) in items.iter().enumerate() {
            if counter.get("name").and_then(Json::as_str).is_none()
                || counter.get("count").and_then(Json::as_u64).is_none()
            {
                return Err(format!("hw_counters[{i}] needs name + count"));
            }
        }
    }
    Ok(schema)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // no exporter in this workspace emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("surrogate \\u escape at byte {}", self.pos))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        // Integer part: one digit, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(format!("bad number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let parsed: f64 = raw.parse().map_err(|_| format!("unparseable number {raw:?}"))?;
        if !parsed.is_finite() {
            return Err(format!("non-finite number {raw:?} at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            Json::parse(r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\nτ", "d": null}, "e": true} "#).unwrap();
        assert_eq!(doc.path("a[2]").unwrap().as_f64(), Some(-300.0));
        assert_eq!(doc.path("b.c").unwrap().as_str(), Some("x\nτ"));
        assert_eq!(doc.path("b.d"), Some(&Json::Null));
        assert_eq!(doc.path("e"), Some(&Json::Bool(true)));
        assert_eq!(doc.path("missing"), None);
    }

    #[test]
    fn large_integers_stay_exact() {
        let big = (1u128 << 90).to_string();
        let doc = Json::parse(&format!("{{\"flops\":{big}}}")).unwrap();
        assert_eq!(doc.get("flops").unwrap().as_u128(), Some(1u128 << 90));
        assert_eq!(doc.get("flops").unwrap().as_u64(), None, "out of u64 range");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"a\":1}{",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn path_handles_bare_indexes_and_chains() {
        let doc = Json::parse(r#"[[1,2],[3,4]]"#).unwrap();
        assert_eq!(doc.path("[1][0]").unwrap().as_u64(), Some(3));
    }

    /// Smallest documents the report validator accepts, per schema.
    fn minimal_report(schema: u64, extra: &str) -> String {
        format!(
            r#"{{"schema":{schema},"kind":"strassen_profile_report","trace":{{"total_flops":88,"levels":[]}},"profile":{{"model_flops":88,"phases":[],"levels":[]}}{extra}}}"#
        )
    }

    #[test]
    fn report_validator_accepts_both_schemas() {
        let v1 = Json::parse(&minimal_report(1, "")).unwrap();
        assert_eq!(validate_profile_report(&v1), Ok(1));

        let sections = concat!(
            r#","pool":{"workers":[]}"#,
            r#","timeline":{"workers":4,"lanes":8,"events":10,"dropped":0,"tasks":3,"edges":2,"levels":[{"level":0,"tasks":3}]}"#,
            r#","hw_counters":[{"name":"cycles","count":512}]"#,
        );
        let v2 = Json::parse(&minimal_report(2, sections)).unwrap();
        assert_eq!(validate_profile_report(&v2), Ok(2));
        // The new sections stay optional in schema 2.
        let v2_bare = Json::parse(&minimal_report(2, "")).unwrap();
        assert_eq!(validate_profile_report(&v2_bare), Ok(2));
    }

    #[test]
    fn report_validator_rejects_bad_documents() {
        let cases: Vec<(String, &str)> = vec![
            (minimal_report(3, ""), "unknown schema number"),
            (minimal_report(1, r#","timeline":{"workers":1}"#), "schema 1 with a timeline"),
            (
                minimal_report(2, r#","timeline":{"workers":1,"lanes":1,"events":0,"dropped":0,"tasks":0}"#),
                "timeline missing edges/levels",
            ),
            (minimal_report(2, r#","hw_counters":[{"name":"cycles"}]"#), "hw counter without a count"),
            (minimal_report(2, r#","pool":{"helper_pops":0}"#), "pool without workers array"),
            (
                minimal_report(2, "").replace(r#""model_flops":88"#, r#""model_flops":89"#),
                "flop drift between layers",
            ),
            (minimal_report(2, "").replace("strassen_profile_report", "other_kind"), "foreign kind"),
        ];
        for (doc, why) in cases {
            let parsed = Json::parse(&doc).expect("test documents are well-formed JSON");
            assert!(validate_profile_report(&parsed).is_err(), "validator accepted {why}: {doc}");
        }
    }
}
