//! Triangular solve with multiple right-hand sides (`TRSM`).
//!
//! Solves `op(A) X = α B` (left side) or `X op(A) = α B` (right side)
//! in place in `B`, where `A` is triangular. This is the other Level 3
//! workhorse of blocked LU/QR factorizations — the use case of the
//! paper's reference \[3\] (Bailey, Lee & Simon: accelerating linear
//! system solution with Strassen).

use crate::level2::Op;
use crate::level3::syrk::Uplo;
use matrix::{MatMut, MatRef, Scalar};

/// Which side the triangular matrix appears on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A) X = α B`.
    Left,
    /// Solve `X op(A) = α B`.
    Right,
}

/// Whether the triangular matrix has an implicit unit diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are taken as stored.
    NonUnit,
    /// Diagonal entries are assumed to be 1 and never read.
    Unit,
}

/// Triangular solve, overwriting `b` with the solution `X`.
///
/// `A` is `m × m` (left) or `n × n` (right) where `B` is `m × n`; only
/// the `uplo` triangle of `A` is referenced.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Op,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    let dim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), dim, "trsm: A must be {dim}x{dim}");
    assert_eq!(a.ncols(), dim, "trsm: A must be {dim}x{dim}");

    if alpha != T::ONE {
        for j in 0..n {
            for x in b.col_mut(j) {
                *x = if alpha == T::ZERO { T::ZERO } else { *x * alpha };
            }
        }
    }
    if m == 0 || n == 0 || alpha == T::ZERO {
        return;
    }

    // Effective orientation: a stored-Upper matrix accessed transposed
    // behaves like Lower, and vice versa.
    let effective_lower = matches!((uplo, trans), (Uplo::Lower, Op::NoTrans) | (Uplo::Upper, Op::Trans));
    // Element of op(A).
    let at = |i: usize, j: usize| match trans {
        Op::NoTrans => a.at(i, j),
        Op::Trans => a.at(j, i),
    };

    match side {
        Side::Left => {
            // Solve op(A) X = B column by column (forward or backward
            // substitution depending on the effective triangle).
            for j in 0..n {
                if effective_lower {
                    for i in 0..m {
                        let mut s = b.at(i, j);
                        for p in 0..i {
                            s -= at(i, p) * b.at(p, j);
                        }
                        if diag == Diag::NonUnit {
                            s /= at(i, i);
                        }
                        b.set(i, j, s);
                    }
                } else {
                    for i in (0..m).rev() {
                        let mut s = b.at(i, j);
                        for p in (i + 1)..m {
                            s -= at(i, p) * b.at(p, j);
                        }
                        if diag == Diag::NonUnit {
                            s /= at(i, i);
                        }
                        b.set(i, j, s);
                    }
                }
            }
        }
        Side::Right => {
            // Solve X op(A) = B column by column of X: column j of X
            // depends on previously solved columns through op(A)'s
            // column j.
            if effective_lower {
                // x_j = (b_j − Σ_{p>j} x_p · op(A)[p, j]) / op(A)[j, j]
                for j in (0..n).rev() {
                    for p in (j + 1)..n {
                        let f = at(p, j);
                        if f == T::ZERO {
                            continue;
                        }
                        for i in 0..m {
                            let v = b.at(i, j) - f * b.at(i, p);
                            b.set(i, j, v);
                        }
                    }
                    if diag == Diag::NonUnit {
                        let d = at(j, j);
                        for x in b.col_mut(j) {
                            *x /= d;
                        }
                    }
                }
            } else {
                // x_j = (b_j − Σ_{p<j} x_p · op(A)[p, j]) / op(A)[j, j]
                for j in 0..n {
                    for p in 0..j {
                        let f = at(p, j);
                        if f == T::ZERO {
                            continue;
                        }
                        for i in 0..m {
                            let v = b.at(i, j) - f * b.at(i, p);
                            b.set(i, j, v);
                        }
                    }
                    if diag == Diag::NonUnit {
                        let d = at(j, j);
                        for x in b.col_mut(j) {
                            *x /= d;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{norms, random, Matrix};

    /// Build a well-conditioned triangular matrix in the given triangle.
    fn triangular(n: usize, uplo: Uplo, diag: Diag, seed: u64) -> Matrix<f64> {
        let r = random::uniform::<f64>(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if i == j {
                match diag {
                    Diag::Unit => 123.0, // stored garbage: must never be read
                    Diag::NonUnit => 2.0 + r.at(i, j).abs(),
                }
            } else if keep {
                r.at(i, j) * 0.3
            } else {
                0.0
            }
        })
    }

    /// Dense op(A) with the unit diagonal made explicit.
    fn explicit(a: &Matrix<f64>, trans: Op, diag: Diag) -> Matrix<f64> {
        let n = a.nrows();
        Matrix::from_fn(n, n, |i, j| {
            let v = if trans == Op::NoTrans { a.at(i, j) } else { a.at(j, i) };
            if i == j && diag == Diag::Unit {
                1.0
            } else {
                v
            }
        })
    }

    fn mul(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        Matrix::from_fn(a.nrows(), b.ncols(), |i, j| (0..a.ncols()).map(|p| a.at(i, p) * b.at(p, j)).sum())
    }

    #[test]
    fn all_sixteen_variants_round_trip() {
        let (m, n) = (9, 6);
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Op::NoTrans, Op::Trans] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let dim = if side == Side::Left { m } else { n };
                        let a = triangular(dim, uplo, diag, 5);
                        let x = random::uniform::<f64>(m, n, 6);
                        let opa = explicit(&a, trans, diag);
                        // B = op(A)·X (left) or X·op(A) (right); then solve.
                        let b0 = match side {
                            Side::Left => mul(&opa, &x),
                            Side::Right => mul(&x, &opa),
                        };
                        let mut b = b0.clone();
                        trsm(side, uplo, trans, diag, 1.0, a.as_ref(), b.as_mut());
                        norms::assert_allclose(
                            b.as_ref(),
                            x.as_ref(),
                            1e-10,
                            &format!("{side:?} {uplo:?} {trans:?} {diag:?}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alpha_scales_rhs() {
        let a = triangular(4, Uplo::Lower, Diag::NonUnit, 1);
        let x = random::uniform::<f64>(4, 3, 2);
        let b0 = mul(&explicit(&a, Op::NoTrans, Diag::NonUnit), &x);
        let mut b = b0.clone();
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 2.0, a.as_ref(), b.as_mut());
        // Solves op(A) X = 2 B, so X doubles.
        let doubled = Matrix::from_fn(4, 3, |i, j| 2.0 * x.at(i, j));
        norms::assert_allclose(b.as_ref(), doubled.as_ref(), 1e-10, "alpha");
    }

    #[test]
    fn unit_diagonal_never_reads_stored_diag() {
        // The stored diagonal is 123.0 garbage; Unit must ignore it.
        let a = triangular(5, Uplo::Upper, Diag::Unit, 3);
        let x = random::uniform::<f64>(5, 2, 4);
        let b0 = mul(&explicit(&a, Op::NoTrans, Diag::Unit), &x);
        let mut b = b0.clone();
        trsm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::Unit, 1.0, a.as_ref(), b.as_mut());
        norms::assert_allclose(b.as_ref(), x.as_ref(), 1e-11, "unit diag");
    }

    #[test]
    fn empty_rhs_is_noop() {
        let a = triangular(3, Uplo::Lower, Diag::NonUnit, 1);
        let mut b = Matrix::<f64>::zeros(3, 0);
        trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0, a.as_ref(), b.as_mut());
    }
}
