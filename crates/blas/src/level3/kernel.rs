//! Register-tiled micro-kernels shared by every packing GEMM path.
//!
//! The packed-panel format (see [`super::blocked`]) feeds an `MR x NR`
//! accumulator tile held entirely in registers. Three implementations sit
//! behind [`microkernel`], chosen by the cached [`kernel_class`] probe:
//!
//! * a generic, autovectorized kernel for any [`Scalar`];
//! * an `f64`-specialized kernel compiled with AVX2 + FMA codegen
//!   (`#[target_feature]`) and an explicit `mul_add` unroll; and
//! * an `f64` AVX-512 kernel holding each 8-row accumulator column in a
//!   single zmm register, plus a *paired-panel* variant
//!   (`microkernel_x2`) that multiplies two adjacent packed-`A` row
//!   panels against one packed-`B` panel — a logical `16 x 6` tile in
//!   twelve zmm accumulators, which is what makes the 5-loop macro-kernel
//!   FMA-bound on AVX-512 parts.
//!
//! The tile is `8 x 6` for `f64`: on AVX2 that is twelve 4-lane FMA
//! accumulators (the BLIS `dgemm` shape for that ISA class); on AVX-512
//! one column is exactly one zmm vector. The accumulator is stored
//! column-major (`acc[column][row]`) so the row dimension, which is
//! contiguous in the packed-`A` panel, is the vectorized one.
//!
//! Every kernel accumulates each `(row, column)` slot with one
//! multiply-add per `kk` step in the same `kk` order. The two hardware
//! kernels (FMA and AVX-512, paired or not) fuse that multiply-add, so
//! their results are **bitwise identical** to each other — the AVX-512
//! upgrade and the paired-panel macro iteration can never change
//! numerics. The generic kernel uses a contracted (unfused)
//! [`Scalar::mul_add`] and agrees to rounding tolerance; it is only ever
//! selected on CPUs where the hardware kernels cannot run, and
//! [`kernel_class`] is probed once per process, so results are always
//! deterministic within a process.

use matrix::Scalar;

/// Micro-tile rows (the packed-`A` panel height).
pub const MR: usize = 8;
/// Micro-tile columns (the packed-`B` panel width).
pub const NR: usize = 6;

/// One `MR x NR` register tile, column-major: `acc[cc][r]` is row `r` of
/// column `cc`.
pub(crate) type AccTile<T> = [[T; MR]; NR];

/// `acc += pa_panel * pb_panel` over depth `kb`, generic autovectorized
/// form. Panel layout: `pa[kk*MR + r]`, `pb[kk*NR + cc]`.
#[inline(always)]
fn microkernel_generic<T: Scalar>(kb: usize, pa: &[T], pb: &[T], acc: &mut AccTile<T>) {
    debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
    for kk in 0..kb {
        let a_off = kk * MR;
        let b_off = kk * NR;
        for (cc, acc_col) in acc.iter_mut().enumerate() {
            // SAFETY: offsets bounded by the debug_assert above.
            let bv = unsafe { *pb.get_unchecked(b_off + cc) };
            for (r, slot) in acc_col.iter_mut().enumerate() {
                let av = unsafe { *pa.get_unchecked(a_off + r) };
                *slot = av.mul_add(bv, *slot);
            }
        }
    }
}

/// `f64` micro-kernel compiled for AVX2 + FMA: the same loop nest, but
/// with hardware-FMA `f64::mul_add` (contracting to `vfmadd` under the
/// enabled target features) and the depth loop unrolled by two so the
/// twelve accumulator vectors pipeline across independent FMA chains.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_f64_fma(kb: usize, pa: &[f64], pb: &[f64], acc: &mut AccTile<f64>) {
    debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
    #[inline(always)]
    unsafe fn step(kk: usize, pa: &[f64], pb: &[f64], acc: &mut AccTile<f64>) {
        let a = pa.get_unchecked(kk * MR..kk * MR + MR);
        let b = pb.get_unchecked(kk * NR..kk * NR + NR);
        for cc in 0..NR {
            let bv = *b.get_unchecked(cc);
            let col = acc.get_unchecked_mut(cc);
            for r in 0..MR {
                let slot = col.get_unchecked_mut(r);
                *slot = a.get_unchecked(r).mul_add(bv, *slot);
            }
        }
    }
    let mut kk = 0;
    while kk + 2 <= kb {
        step(kk, pa, pb, acc);
        step(kk + 1, pa, pb, acc);
        kk += 2;
    }
    if kk < kb {
        step(kk, pa, pb, acc);
    }
}

/// `f64` micro-kernel for AVX-512: each accumulator column is one zmm
/// register (`MR == 8` doubles), each `kk` step is one contiguous load of
/// the packed-`A` column, `NR` broadcasts of packed-`B` elements, and
/// `NR` fused multiply-adds.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_f64_avx512(kb: usize, pa: &[f64], pb: &[f64], acc: &mut AccTile<f64>) {
    use core::arch::x86_64::*;
    debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
    let mut c = [_mm512_setzero_pd(); NR];
    for (v, col) in c.iter_mut().zip(acc.iter()) {
        *v = _mm512_loadu_pd(col.as_ptr());
    }
    for kk in 0..kb {
        let a = _mm512_loadu_pd(pa.as_ptr().add(kk * MR));
        for (cc, v) in c.iter_mut().enumerate() {
            let bv = _mm512_set1_pd(*pb.get_unchecked(kk * NR + cc));
            *v = _mm512_fmadd_pd(a, bv, *v);
        }
    }
    for (v, col) in c.iter().zip(acc.iter_mut()) {
        _mm512_storeu_pd(col.as_mut_ptr(), *v);
    }
}

/// Paired-panel AVX-512 kernel: two adjacent packed-`A` row panels
/// against one packed-`B` panel, a logical `2·MR x NR` tile. Per `kk`
/// step: two contiguous zmm loads, `NR` broadcasts, `2·NR` fused
/// multiply-adds across twelve independent accumulator chains — enough to
/// saturate both FMA pipes without reloading `B`.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_f64_avx512_x2(
    kb: usize,
    pa0: &[f64],
    pa1: &[f64],
    pb: &[f64],
    acc0: &mut AccTile<f64>,
    acc1: &mut AccTile<f64>,
) {
    use core::arch::x86_64::*;
    debug_assert!(pa0.len() >= kb * MR && pa1.len() >= kb * MR && pb.len() >= kb * NR);
    let mut c0 = [_mm512_setzero_pd(); NR];
    let mut c1 = [_mm512_setzero_pd(); NR];
    for cc in 0..NR {
        c0[cc] = _mm512_loadu_pd(acc0[cc].as_ptr());
        c1[cc] = _mm512_loadu_pd(acc1[cc].as_ptr());
    }
    for kk in 0..kb {
        let a0 = _mm512_loadu_pd(pa0.as_ptr().add(kk * MR));
        let a1 = _mm512_loadu_pd(pa1.as_ptr().add(kk * MR));
        for cc in 0..NR {
            let bv = _mm512_set1_pd(*pb.get_unchecked(kk * NR + cc));
            c0[cc] = _mm512_fmadd_pd(a0, bv, c0[cc]);
            c1[cc] = _mm512_fmadd_pd(a1, bv, c1[cc]);
        }
    }
    for cc in 0..NR {
        _mm512_storeu_pd(acc0[cc].as_mut_ptr(), c0[cc]);
        _mm512_storeu_pd(acc1[cc].as_mut_ptr(), c1[cc]);
    }
}

/// Which micro-kernel implementation runs for `f64` on this CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Generic autovectorized kernel (any scalar, any ISA).
    Generic,
    /// AVX2 + FMA `f64` specialization.
    Fma,
    /// AVX-512F `f64` specialization with paired-panel macro iteration.
    Avx512,
}

/// Cached runtime probe for the `f64` kernel class. The two hardware
/// classes produce bitwise-identical results and the generic class agrees
/// to rounding tolerance (see module docs); the probe result never
/// changes within a process.
pub fn kernel_class() -> KernelClass {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = unprobed, 1 = generic, 2 = fma, 3 = avx512.
        static PROBE: AtomicU8 = AtomicU8::new(0);
        let v = match PROBE.load(Ordering::Relaxed) {
            0 => {
                let v = if std::is_x86_feature_detected!("avx512f") {
                    3
                } else if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                    2
                } else {
                    1
                };
                PROBE.store(v, Ordering::Relaxed);
                v
            }
            v => v,
        };
        match v {
            3 => KernelClass::Avx512,
            2 => KernelClass::Fma,
            _ => KernelClass::Generic,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    KernelClass::Generic
}

/// True when `T` is `f64` (the only type with specialized kernels).
#[inline(always)]
fn is_f64<T: Scalar>() -> bool {
    core::any::TypeId::of::<T>() == core::any::TypeId::of::<f64>()
}

/// `acc += pa_panel * pb_panel` over depth `kb`, dispatching to the
/// `f64` AVX-512 or FMA specialization when the element type and CPU
/// allow it.
#[inline(always)]
pub(crate) fn microkernel<T: Scalar>(kb: usize, pa: &[T], pb: &[T], acc: &mut AccTile<T>) {
    #[cfg(target_arch = "x86_64")]
    if is_f64::<T>() {
        // SAFETY: T is exactly f64 (TypeId match on a 'static type), so the
        // slice and tile reinterpretations are identity casts; the CPU
        // probe guarantees the target features.
        unsafe {
            let pa = core::slice::from_raw_parts(pa.as_ptr().cast::<f64>(), pa.len());
            let pb = core::slice::from_raw_parts(pb.as_ptr().cast::<f64>(), pb.len());
            let acc = &mut *(acc as *mut AccTile<T>).cast::<AccTile<f64>>();
            match kernel_class() {
                KernelClass::Avx512 => return microkernel_f64_avx512(kb, pa, pb, acc),
                KernelClass::Fma => return microkernel_f64_fma(kb, pa, pb, acc),
                KernelClass::Generic => {}
            }
        }
    }
    microkernel_generic(kb, pa, pb, acc)
}

/// Paired-panel form: `acc0 += pa0 * pb` and `acc1 += pa1 * pb` in one
/// pass over the packed-`B` panel. On AVX-512 `f64` this runs the fused
/// `16 x 6` kernel; elsewhere it is exactly two [`microkernel`] calls, so
/// results never depend on which path ran.
#[inline(always)]
pub(crate) fn microkernel_x2<T: Scalar>(
    kb: usize,
    pa0: &[T],
    pa1: &[T],
    pb: &[T],
    acc0: &mut AccTile<T>,
    acc1: &mut AccTile<T>,
) {
    #[cfg(target_arch = "x86_64")]
    if is_f64::<T>() && kernel_class() == KernelClass::Avx512 {
        // SAFETY: T is exactly f64; the probe guarantees AVX-512F.
        unsafe {
            microkernel_f64_avx512_x2(
                kb,
                core::slice::from_raw_parts(pa0.as_ptr().cast::<f64>(), pa0.len()),
                core::slice::from_raw_parts(pa1.as_ptr().cast::<f64>(), pa1.len()),
                core::slice::from_raw_parts(pb.as_ptr().cast::<f64>(), pb.len()),
                &mut *(acc0 as *mut AccTile<T>).cast::<AccTile<f64>>(),
                &mut *(acc1 as *mut AccTile<T>).cast::<AccTile<f64>>(),
            );
        }
        return;
    }
    microkernel(kb, pa0, pb, acc0);
    microkernel(kb, pa1, pb, acc1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_tile(kb: usize, pa: &[f64], pb: &[f64]) -> AccTile<f64> {
        let mut acc = [[0.0; MR]; NR];
        for kk in 0..kb {
            for (cc, col) in acc.iter_mut().enumerate() {
                for (r, slot) in col.iter_mut().enumerate() {
                    *slot += pa[kk * MR + r] * pb[kk * NR + cc];
                }
            }
        }
        acc
    }

    fn panels(kb: usize) -> (Vec<f64>, Vec<f64>) {
        let pa: Vec<f64> = (0..kb * MR).map(|i| (i as f64 * 0.37).sin()).collect();
        let pb: Vec<f64> = (0..kb * NR).map(|i| (i as f64 * 0.61).cos()).collect();
        (pa, pb)
    }

    #[test]
    fn generic_matches_reference() {
        for kb in [0usize, 1, 2, 3, 7, 16, 33] {
            let (pa, pb) = panels(kb);
            let mut acc = [[0.0; MR]; NR];
            microkernel_generic(kb, &pa, &pb, &mut acc);
            let expect = reference_tile(kb, &pa, &pb);
            for cc in 0..NR {
                for r in 0..MR {
                    assert!((acc[cc][r] - expect[cc][r]).abs() < 1e-13, "kb={kb} ({r},{cc})");
                }
            }
        }
    }

    /// |got − want| within a few ulps of the accumulated magnitude, for
    /// comparing fused against contracted accumulation chains.
    fn close(got: f64, want: f64, kb: usize) -> bool {
        (got - want).abs() <= 1e-14 * (kb as f64 + 1.0)
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_kernel_matches_generic_to_tolerance() {
        // The generic kernel's multiply-add is contracted (two roundings),
        // the hardware kernel's is fused — same order, so they agree to
        // per-step rounding noise but not bitwise.
        if !std::is_x86_feature_detected!("fma") || !std::is_x86_feature_detected!("avx2") {
            return; // nothing to compare on this CPU
        }
        for kb in [1usize, 2, 5, 16, 31] {
            let (pa, pb) = panels(kb);
            let mut acc_g = [[1.0; MR]; NR];
            let mut acc_f = [[1.0; MR]; NR];
            microkernel_generic(kb, &pa, &pb, &mut acc_g);
            // SAFETY: feature detection checked above.
            unsafe { microkernel_f64_fma(kb, &pa, &pb, &mut acc_f) };
            for cc in 0..NR {
                for r in 0..MR {
                    assert!(close(acc_f[cc][r], acc_g[cc][r], kb), "kb={kb} ({r},{cc})");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_kernels_match_fma_kernel_bitwise() {
        // All hardware kernels fuse the same multiply-add sequence in the
        // same order, so the AVX-512 single and paired variants must equal
        // the FMA kernel bit for bit.
        if !std::is_x86_feature_detected!("avx512f") {
            return; // nothing to compare on this CPU
        }
        for kb in [1usize, 2, 5, 16, 31] {
            let (pa0, pb) = panels(kb);
            let pa1: Vec<f64> = (0..kb * MR).map(|i| (i as f64 * 0.23).cos()).collect();
            let mut f0 = [[0.5; MR]; NR];
            let mut f1 = [[-0.5; MR]; NR];
            // SAFETY: avx512f implies fma support.
            unsafe {
                microkernel_f64_fma(kb, &pa0, &pb, &mut f0);
                microkernel_f64_fma(kb, &pa1, &pb, &mut f1);
            }

            let mut s0 = [[0.5; MR]; NR];
            // SAFETY: feature detection checked above.
            unsafe { microkernel_f64_avx512(kb, &pa0, &pb, &mut s0) };
            let mut p0 = [[0.5; MR]; NR];
            let mut p1 = [[-0.5; MR]; NR];
            // SAFETY: feature detection checked above.
            unsafe { microkernel_f64_avx512_x2(kb, &pa0, &pa1, &pb, &mut p0, &mut p1) };
            for cc in 0..NR {
                for r in 0..MR {
                    assert_eq!(f0[cc][r].to_bits(), s0[cc][r].to_bits(), "single kb={kb} ({r},{cc})");
                    assert_eq!(f0[cc][r].to_bits(), p0[cc][r].to_bits(), "pair0 kb={kb} ({r},{cc})");
                    assert_eq!(f1[cc][r].to_bits(), p1[cc][r].to_bits(), "pair1 kb={kb} ({r},{cc})");
                }
            }
        }
    }

    #[test]
    fn paired_dispatch_matches_two_single_calls() {
        for kb in [0usize, 1, 3, 9, 24] {
            let (pa0, pb) = panels(kb);
            let pa1: Vec<f64> = (0..kb * MR).map(|i| (i as f64 * 0.11).sin()).collect();
            let mut a0 = [[2.0; MR]; NR];
            let mut a1 = [[3.0; MR]; NR];
            microkernel(kb, &pa0, &pb, &mut a0);
            microkernel(kb, &pa1, &pb, &mut a1);
            let mut b0 = [[2.0; MR]; NR];
            let mut b1 = [[3.0; MR]; NR];
            microkernel_x2(kb, &pa0, &pa1, &pb, &mut b0, &mut b1);
            for cc in 0..NR {
                for r in 0..MR {
                    assert_eq!(a0[cc][r].to_bits(), b0[cc][r].to_bits(), "kb={kb} ({r},{cc})");
                    assert_eq!(a1[cc][r].to_bits(), b1[cc][r].to_bits(), "kb={kb} ({r},{cc})");
                }
            }
        }
    }

    #[test]
    fn kernel_class_probe_is_stable() {
        assert_eq!(kernel_class(), kernel_class());
    }

    #[test]
    fn dispatcher_runs_for_f32_and_f64() {
        let (pa, pb) = panels(4);
        let mut acc = [[0.0f64; MR]; NR];
        microkernel(4, &pa, &pb, &mut acc);
        let expect = reference_tile(4, &pa, &pb);
        assert!((acc[0][0] - expect[0][0]).abs() < 1e-12);

        let pa32: Vec<f32> = pa.iter().map(|&x| x as f32).collect();
        let pb32: Vec<f32> = pb.iter().map(|&x| x as f32).collect();
        let mut acc32 = [[0.0f32; MR]; NR];
        microkernel(4, &pa32, &pb32, &mut acc32);
        assert!((acc32[0][0] as f64 - expect[0][0]).abs() < 1e-5);
    }
}
