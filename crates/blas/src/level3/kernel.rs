//! Register-tiled micro-kernels shared by every packing GEMM path.
//!
//! The packed-panel format (see [`super::blocked`]) feeds an `MR x NR`
//! accumulator tile held entirely in registers. Two implementations sit
//! behind [`microkernel`]:
//!
//! * a generic, autovectorized kernel for any [`Scalar`]; and
//! * an `f64`-specialized kernel compiled with AVX2 + FMA codegen
//!   (`#[target_feature]`) and an explicit `mul_add` unroll, selected at
//!   runtime when the CPU supports those features.
//!
//! The tile is `8 x 6` for `f64`: twelve 4-lane FMA accumulators plus two
//! loads of the packed-`A` column and one broadcast of the packed-`B`
//! element stay within the sixteen AVX ymm registers — the same shape the
//! BLIS `dgemm` micro-kernels use on this ISA class. The accumulator is
//! stored column-major (`acc[column][row]`) so the row dimension, which is
//! contiguous in the packed-`A` panel, is the vectorized one.

use matrix::Scalar;

/// Micro-tile rows (the packed-`A` panel height).
pub const MR: usize = 8;
/// Micro-tile columns (the packed-`B` panel width).
pub const NR: usize = 6;

/// One `MR x NR` register tile, column-major: `acc[cc][r]` is row `r` of
/// column `cc`.
pub(crate) type AccTile<T> = [[T; MR]; NR];

/// `acc += pa_panel * pb_panel` over depth `kb`, generic autovectorized
/// form. Panel layout: `pa[kk*MR + r]`, `pb[kk*NR + cc]`.
#[inline(always)]
fn microkernel_generic<T: Scalar>(kb: usize, pa: &[T], pb: &[T], acc: &mut AccTile<T>) {
    debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
    for kk in 0..kb {
        let a_off = kk * MR;
        let b_off = kk * NR;
        for (cc, acc_col) in acc.iter_mut().enumerate() {
            // SAFETY: offsets bounded by the debug_assert above.
            let bv = unsafe { *pb.get_unchecked(b_off + cc) };
            for (r, slot) in acc_col.iter_mut().enumerate() {
                let av = unsafe { *pa.get_unchecked(a_off + r) };
                *slot = av.mul_add(bv, *slot);
            }
        }
    }
}

/// `f64` micro-kernel compiled for AVX2 + FMA: the same loop nest, but
/// with hardware-FMA `f64::mul_add` (contracting to `vfmadd` under the
/// enabled target features) and the depth loop unrolled by two so the
/// twelve accumulator vectors pipeline across independent FMA chains.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_f64_fma(kb: usize, pa: &[f64], pb: &[f64], acc: &mut AccTile<f64>) {
    debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
    #[inline(always)]
    unsafe fn step(kk: usize, pa: &[f64], pb: &[f64], acc: &mut AccTile<f64>) {
        let a = pa.get_unchecked(kk * MR..kk * MR + MR);
        let b = pb.get_unchecked(kk * NR..kk * NR + NR);
        for cc in 0..NR {
            let bv = *b.get_unchecked(cc);
            let col = acc.get_unchecked_mut(cc);
            for r in 0..MR {
                let slot = col.get_unchecked_mut(r);
                *slot = a.get_unchecked(r).mul_add(bv, *slot);
            }
        }
    }
    let mut kk = 0;
    while kk + 2 <= kb {
        step(kk, pa, pb, acc);
        step(kk + 1, pa, pb, acc);
        kk += 2;
    }
    if kk < kb {
        step(kk, pa, pb, acc);
    }
}

/// True when the `f64` FMA kernel may run on this CPU (cached probe).
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = unprobed, 1 = no, 2 = yes.
    static PROBE: AtomicU8 = AtomicU8::new(0);
    match PROBE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
            PROBE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        v => v == 2,
    }
}

/// `acc += pa_panel * pb_panel` over depth `kb`, dispatching to the
/// `f64`/FMA specialization when the element type and CPU allow it.
#[inline(always)]
pub(crate) fn microkernel<T: Scalar>(kb: usize, pa: &[T], pb: &[T], acc: &mut AccTile<T>) {
    #[cfg(target_arch = "x86_64")]
    if core::any::TypeId::of::<T>() == core::any::TypeId::of::<f64>() && fma_available() {
        // SAFETY: T is exactly f64 (TypeId match on a 'static type), so the
        // slice and tile reinterpretations are identity casts; the CPU
        // probe guarantees the target features.
        unsafe {
            microkernel_f64_fma(
                kb,
                core::slice::from_raw_parts(pa.as_ptr().cast::<f64>(), pa.len()),
                core::slice::from_raw_parts(pb.as_ptr().cast::<f64>(), pb.len()),
                &mut *(acc as *mut AccTile<T>).cast::<AccTile<f64>>(),
            );
        }
        return;
    }
    microkernel_generic(kb, pa, pb, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_tile(kb: usize, pa: &[f64], pb: &[f64]) -> AccTile<f64> {
        let mut acc = [[0.0; MR]; NR];
        for kk in 0..kb {
            for (cc, col) in acc.iter_mut().enumerate() {
                for (r, slot) in col.iter_mut().enumerate() {
                    *slot += pa[kk * MR + r] * pb[kk * NR + cc];
                }
            }
        }
        acc
    }

    fn panels(kb: usize) -> (Vec<f64>, Vec<f64>) {
        let pa: Vec<f64> = (0..kb * MR).map(|i| (i as f64 * 0.37).sin()).collect();
        let pb: Vec<f64> = (0..kb * NR).map(|i| (i as f64 * 0.61).cos()).collect();
        (pa, pb)
    }

    #[test]
    fn generic_matches_reference() {
        for kb in [0usize, 1, 2, 3, 7, 16, 33] {
            let (pa, pb) = panels(kb);
            let mut acc = [[0.0; MR]; NR];
            microkernel_generic(kb, &pa, &pb, &mut acc);
            let expect = reference_tile(kb, &pa, &pb);
            for cc in 0..NR {
                for r in 0..MR {
                    assert!((acc[cc][r] - expect[cc][r]).abs() < 1e-13, "kb={kb} ({r},{cc})");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_kernel_matches_generic() {
        if !fma_available() {
            return; // nothing to compare on this CPU
        }
        for kb in [1usize, 2, 5, 16, 31] {
            let (pa, pb) = panels(kb);
            let mut acc_g = [[1.0; MR]; NR];
            let mut acc_f = [[1.0; MR]; NR];
            microkernel_generic(kb, &pa, &pb, &mut acc_g);
            // SAFETY: fma_available() checked above.
            unsafe { microkernel_f64_fma(kb, &pa, &pb, &mut acc_f) };
            for cc in 0..NR {
                for r in 0..MR {
                    // FMA keeps extra precision in the intermediate, so
                    // allow a tiny rounding difference.
                    assert!((acc_g[cc][r] - acc_f[cc][r]).abs() < 1e-12, "kb={kb} ({r},{cc})");
                }
            }
        }
    }

    #[test]
    fn dispatcher_runs_for_f32_and_f64() {
        let (pa, pb) = panels(4);
        let mut acc = [[0.0f64; MR]; NR];
        microkernel(4, &pa, &pb, &mut acc);
        let expect = reference_tile(4, &pa, &pb);
        assert!((acc[0][0] - expect[0][0]).abs() < 1e-12);

        let pa32: Vec<f32> = pa.iter().map(|&x| x as f32).collect();
        let pb32: Vec<f32> = pb.iter().map(|&x| x as f32).collect();
        let mut acc32 = [[0.0f32; MR]; NR];
        microkernel(4, &pa32, &pb32, &mut acc32);
        assert!((acc32[0][0] as f64 - expect[0][0]).abs() < 1e-5);
    }
}
