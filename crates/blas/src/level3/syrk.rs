//! Symmetric rank-k update (`SYRK`).
//!
//! `C ← α A Aᵀ + β C` (or `α Aᵀ A + β C`), touching only one triangle of
//! `C` — the kernel eigensolvers and normal-equation solvers use when the
//! result is known to be symmetric, at roughly half the flops of a
//! general GEMM.

use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Which triangle of the symmetric result is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uplo {
    /// Update/reference the upper triangle (including the diagonal).
    Upper,
    /// Update/reference the lower triangle (including the diagonal).
    Lower,
}

/// Symmetric rank-k update.
///
/// With `trans = NoTrans`: `C ← α A Aᵀ + β C` where `A` is `n × k`.
/// With `trans = Trans`:   `C ← α Aᵀ A + β C` where `A` is `k × n`.
/// Only the `uplo` triangle of the `n × n` matrix `C` is read or written.
pub fn syrk<T: Scalar>(uplo: Uplo, trans: Op, alpha: T, a: MatRef<'_, T>, beta: T, mut c: MatMut<'_, T>) {
    let (n, k) = trans.dims(&a);
    assert_eq!(c.nrows(), n, "syrk: C must be {n}x{n}");
    assert_eq!(c.ncols(), n, "syrk: C must be {n}x{n}");

    // Scale the referenced triangle.
    if beta != T::ONE {
        for j in 0..n {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            let col = c.col_mut(j);
            for x in &mut col[lo..hi] {
                *x = if beta == T::ZERO { T::ZERO } else { *x * beta };
            }
        }
    }
    if alpha == T::ZERO || n == 0 || k == 0 {
        return;
    }

    match trans {
        // C += alpha * A Aᵀ: rank-one sweeps over columns of A.
        Op::NoTrans => {
            for p in 0..k {
                let ap = a.col(p);
                for j in 0..n {
                    let f = alpha * ap[j];
                    if f == T::ZERO {
                        continue;
                    }
                    let (lo, hi) = match uplo {
                        Uplo::Upper => (0, j + 1),
                        Uplo::Lower => (j, n),
                    };
                    let col = c.col_mut(j);
                    for i in lo..hi {
                        col[i] += f * ap[i];
                    }
                }
            }
        }
        // C += alpha * Aᵀ A: each entry is a dot of two columns of A.
        Op::Trans => {
            for j in 0..n {
                let aj = a.col(j);
                let (lo, hi) = match uplo {
                    Uplo::Upper => (0, j + 1),
                    Uplo::Lower => (j, n),
                };
                for i in lo..hi {
                    let ai = a.col(i);
                    let mut s = T::ZERO;
                    for p in 0..k {
                        s += ai[p] * aj[p];
                    }
                    // SAFETY: lo..hi in bounds for column j.
                    unsafe {
                        *c.get_unchecked_mut(i, j) += alpha * s;
                    }
                }
            }
        }
    }
}

/// Copy the `uplo` triangle of `c` onto the other one, making it fully
/// symmetric (convenience after a sequence of `syrk` updates).
pub fn symmetrize_from<T: Scalar>(uplo: Uplo, mut c: MatMut<'_, T>) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "symmetrize: square expected");
    for j in 0..n {
        for i in 0..j {
            match uplo {
                Uplo::Upper => {
                    let v = c.at(i, j);
                    c.set(j, i, v);
                }
                Uplo::Lower => {
                    let v = c.at(j, i);
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    fn dense_syrk(trans: Op, alpha: f64, a: &Matrix<f64>, beta: f64, c: &Matrix<f64>) -> Matrix<f64> {
        let (n, k) = trans.dims(&a.as_ref());
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for p in 0..k {
                let (x, y) = match trans {
                    Op::NoTrans => (a.at(i, p), a.at(j, p)),
                    Op::Trans => (a.at(p, i), a.at(p, j)),
                };
                s += x * y;
            }
            alpha * s + beta * c.at(i, j)
        })
    }

    fn check(uplo: Uplo, trans: Op, n: usize, k: usize) {
        let (ar, ac) = if trans == Op::NoTrans { (n, k) } else { (k, n) };
        let a = random::uniform::<f64>(ar, ac, 3);
        let c0 = random::symmetric::<f64>(n, 4);
        let expect = dense_syrk(trans, 1.5, &a, -0.5, &c0);
        let mut c = c0.clone();
        syrk(uplo, trans, 1.5, a.as_ref(), -0.5, c.as_mut());
        symmetrize_from(uplo, c.as_mut());
        matrix::norms::assert_allclose(c.as_ref(), expect.as_ref(), 1e-12, &format!("{uplo:?} {trans:?}"));
    }

    #[test]
    fn matches_dense_all_variants() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Op::NoTrans, Op::Trans] {
                check(uplo, trans, 7, 5);
                check(uplo, trans, 12, 12);
                check(uplo, trans, 1, 9);
            }
        }
    }

    #[test]
    fn untouched_triangle_preserved() {
        let a = random::uniform::<f64>(5, 3, 1);
        let mut c = Matrix::<f64>::zeros(5, 5);
        c.set(4, 0, 99.0); // lower triangle entry
        syrk(Uplo::Upper, Op::NoTrans, 1.0, a.as_ref(), 0.0, c.as_mut());
        assert_eq!(c.at(4, 0), 99.0, "upper-only update must not touch lower");
    }

    #[test]
    fn beta_zero_clears_nan_in_triangle() {
        let a = random::uniform::<f64>(4, 2, 1);
        let mut c = Matrix::from_fn(4, 4, |_, _| f64::NAN);
        syrk(Uplo::Lower, Op::NoTrans, 1.0, a.as_ref(), 0.0, c.as_mut());
        for j in 0..4 {
            for i in j..4 {
                assert!(c.at(i, j).is_finite());
            }
        }
    }

    #[test]
    fn symmetrize_round_trip() {
        let mut c = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        symmetrize_from(Uplo::Lower, c.as_mut());
        assert!(c.is_symmetric());
        assert_eq!(c.at(0, 3), c.at(3, 0));
    }
}
