//! Runtime selection of the 5-loop blocking parameters `(mc, kc, nc)`.
//!
//! The Goto/BLIS analytical model ties each parameter to one level of the
//! cache hierarchy:
//!
//! * `kc` — a `kc x NR` packed-`B` micro-panel should occupy about half
//!   of L1d, leaving the other half for the streaming `A` panel and `C`
//!   tile;
//! * `mc` — the `mc x kc` packed-`A` block should occupy about half of
//!   L2, so it survives the whole `jr` sweep;
//! * `nc` — the `kc x nc` packed-`B` panel should sit in L3; it is also
//!   capped so the pack buffer stays modest on parts with enormous L3.
//!
//! Cache sizes come from a sysfs probe (`/sys/devices/system/cpu/.../
//! cache`) with a conservative fallback profile when the probe fails
//! (non-Linux hosts, sandboxes that mask sysfs). The derived parameters
//! are rounded to kernel-friendly multiples: `mc` to `2·MR` so the
//! macro-kernel's paired-panel AVX-512 path sees whole pairs, `nc` to
//! `NR`. The probe and derivation run once per process ([`std::sync::
//! OnceLock`]); [`GemmConfig::auto`](super::GemmConfig::auto) is the
//! public entry point.

use super::kernel::{MR, NR};
use std::sync::OnceLock;

/// Data-cache sizes in bytes, innermost first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheInfo {
    /// Per-core L1 data cache.
    pub l1d: usize,
    /// Per-core unified L2.
    pub l2: usize,
    /// Shared last-level cache.
    pub l3: usize,
}

impl CacheInfo {
    /// Conservative defaults (a generic x86-64 server core) used when the
    /// sysfs probe is unavailable.
    pub const FALLBACK: CacheInfo = CacheInfo { l1d: 32 * 1024, l2: 1024 * 1024, l3: 8 * 1024 * 1024 };

    /// Probe this machine's cache sizes, falling back per level to
    /// [`CacheInfo::FALLBACK`] for anything the probe cannot read.
    pub fn detect() -> CacheInfo {
        let probed = probe_sysfs();
        CacheInfo {
            l1d: probed.l1d.unwrap_or(Self::FALLBACK.l1d),
            l2: probed.l2.unwrap_or(Self::FALLBACK.l2),
            l3: probed.l3.unwrap_or(probed.l2.map_or(Self::FALLBACK.l3, |l2| l2 * 8)),
        }
    }
}

#[derive(Default)]
struct ProbedCaches {
    l1d: Option<usize>,
    l2: Option<usize>,
    l3: Option<usize>,
}

/// Parse a sysfs cache size string like `"48K"`, `"2048K"`, or `"16M"`.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Read cpu0's cache hierarchy from sysfs. Any unreadable entry is
/// simply skipped — the caller falls back per level.
fn probe_sysfs() -> ProbedCaches {
    let mut out = ProbedCaches::default();
    let base = "/sys/devices/system/cpu/cpu0/cache";
    let Ok(entries) = std::fs::read_dir(base) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let read = |name: &str| std::fs::read_to_string(path.join(name)).ok();
        let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size")) else {
            continue;
        };
        let Some(bytes) = parse_size(&size) else { continue };
        let ty = ty.trim();
        match (level.trim(), ty) {
            ("1", "Data") => out.l1d = Some(bytes),
            ("2", "Unified") | ("2", "Data") => out.l2 = Some(bytes),
            ("3", "Unified") | ("3", "Data") => out.l3 = Some(bytes),
            _ => {}
        }
    }
    out
}

/// One derived `(mc, kc, nc)` blocking, in elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockingParams {
    /// Rows of packed `A` per L2 block (multiple of `2·MR`).
    pub mc: usize,
    /// Panel depth (L1-sized).
    pub kc: usize,
    /// Columns of packed `B` per outer panel (multiple of `NR`).
    pub nc: usize,
}

/// Upper cap on `nc`: beyond this the packed-`B` panel stops paying for
/// itself and the buffer just grows (4092 = largest multiple of `NR`
/// under 4096, the top of the bench sweep).
const NC_CAP: usize = 4092;

impl BlockingParams {
    /// Derive the blocking for an element of `elem_size` bytes from the
    /// cache model above.
    pub fn for_cache(cache: &CacheInfo, elem_size: usize) -> BlockingParams {
        let kc = (cache.l1d / 2 / (NR * elem_size)).clamp(64, 1024);
        // Round kc down to a multiple of 8 so panel strides stay aligned.
        let kc = (kc / 8 * 8).max(64);
        let mc = (cache.l2 / 2 / (kc * elem_size)).clamp(2 * MR, 2048);
        let mc = (mc / (2 * MR)) * (2 * MR);
        let nc = (cache.l3 / 2 / (kc * elem_size)).clamp(NR, NC_CAP);
        let nc = (nc / NR * NR).max(NR);
        BlockingParams { mc, kc, nc }
    }

    /// The cached per-process blocking for `f64` (probe + derivation run
    /// once).
    pub fn auto_f64() -> BlockingParams {
        static CACHED: OnceLock<BlockingParams> = OnceLock::new();
        *CACHED.get_or_init(|| BlockingParams::for_cache(&CacheInfo::detect(), 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_handles_suffixes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_size("16M"), Some(16 * 1024 * 1024));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn fallback_profile_derives_sane_blocking() {
        let p = BlockingParams::for_cache(&CacheInfo::FALLBACK, 8);
        assert!(p.kc >= 64 && p.kc <= 1024);
        assert!(p.mc >= 2 * MR && p.mc % (2 * MR) == 0);
        assert!(p.nc >= NR && p.nc % NR == 0 && p.nc <= NC_CAP);
        // The model's intent, restated: the packed A block fits in half
        // the modeled L2, the B micro-panel in half the modeled L1.
        assert!(p.mc * p.kc * 8 <= CacheInfo::FALLBACK.l2);
        assert!(p.kc * NR * 8 <= CacheInfo::FALLBACK.l1d);
    }

    #[test]
    fn degenerate_caches_still_yield_legal_parameters() {
        for cache in
            [CacheInfo { l1d: 1, l2: 1, l3: 1 }, CacheInfo { l1d: 1 << 30, l2: 1 << 30, l3: 1 << 30 }]
        {
            let p = BlockingParams::for_cache(&cache, 8);
            assert!(p.mc >= 2 * MR && p.kc >= 64 && p.nc >= NR);
            assert!(p.nc <= NC_CAP && p.mc <= 2048 && p.kc <= 1024);
        }
    }

    #[test]
    fn auto_is_deterministic() {
        assert_eq!(BlockingParams::auto_f64(), BlockingParams::auto_f64());
        let detected = CacheInfo::detect();
        assert!(detected.l1d > 0 && detected.l2 > 0 && detected.l3 > 0);
    }
}
