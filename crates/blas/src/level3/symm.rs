//! Symmetric matrix-matrix multiply (`SYMM`).
//!
//! `C ← α A B + β C` (or `α B A + β C`) where `A` is symmetric and only
//! its `uplo` triangle is stored/read — the Level 3 routine eigensolvers
//! use to multiply by matrices kept in packed-symmetric form.

use super::scale_c;
use crate::level3::syrk::Uplo;
use crate::level3::trsm::Side;
use matrix::{MatMut, MatRef, Scalar};

/// Element `(i, j)` of the symmetric matrix whose `uplo` triangle is
/// stored in `a`.
#[inline(always)]
fn sym_at<T: Scalar>(uplo: Uplo, a: &MatRef<'_, T>, i: usize, j: usize) -> T {
    let read_stored = match uplo {
        Uplo::Lower => i >= j,
        Uplo::Upper => i <= j,
    };
    if read_stored {
        a.at(i, j)
    } else {
        a.at(j, i)
    }
}

/// Symmetric multiply: `C ← α A B + β C` (`side = Left`, `A` is `m × m`)
/// or `C ← α B A + β C` (`side = Right`, `A` is `n × n`), with `B` and
/// `C` both `m × n`. Only the `uplo` triangle of `A` is read.
#[allow(clippy::too_many_arguments)]
pub fn symm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let dim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), dim, "symm: A must be {dim}x{dim}");
    assert_eq!(a.ncols(), dim, "symm: A must be {dim}x{dim}");
    assert_eq!(b.nrows(), m, "symm: B must be {m}x{n}");
    assert_eq!(b.ncols(), n, "symm: B must be {m}x{n}");

    scale_c(beta, &mut c);
    if alpha == T::ZERO || m == 0 || n == 0 {
        return;
    }

    match side {
        Side::Left => {
            // c[:,j] += alpha * sym(A) * b[:,j], axpy-style over p.
            for j in 0..n {
                let bcol = b.col(j);
                for p in 0..m {
                    let f = alpha * bcol[p];
                    if f == T::ZERO {
                        continue;
                    }
                    let ccol = c.col_mut(j);
                    for (i, ci) in ccol.iter_mut().enumerate() {
                        *ci += f * sym_at(uplo, &a, i, p);
                    }
                }
            }
        }
        Side::Right => {
            // c[:,j] += alpha * Σ_p b[:,p] · sym(A)[p, j].
            for j in 0..n {
                for p in 0..n {
                    let f = alpha * sym_at(uplo, &a, p, j);
                    if f == T::ZERO {
                        continue;
                    }
                    let bcol = b.col(p);
                    let ccol = c.col_mut(j);
                    for (i, ci) in ccol.iter_mut().enumerate() {
                        *ci += f * bcol[i];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{norms, random, Matrix};

    /// Store only one triangle of a symmetric matrix, poisoning the other.
    fn half_stored(full: &Matrix<f64>, uplo: Uplo) -> Matrix<f64> {
        let n = full.nrows();
        Matrix::from_fn(n, n, |i, j| {
            let stored = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if stored {
                full.at(i, j)
            } else {
                f64::NAN // must never be read
            }
        })
    }

    fn dense(
        side: Side,
        alpha: f64,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Matrix<f64> {
        let (m, n) = (c.nrows(), c.ncols());
        Matrix::from_fn(m, n, |i, j| {
            let s: f64 = match side {
                Side::Left => (0..m).map(|p| a.at(i, p) * b.at(p, j)).sum(),
                Side::Right => (0..n).map(|p| b.at(i, p) * a.at(p, j)).sum(),
            };
            alpha * s + beta * c.at(i, j)
        })
    }

    #[test]
    fn matches_dense_and_never_reads_other_triangle() {
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                let (m, n) = (7, 5);
                let dim = if side == Side::Left { m } else { n };
                let full = random::symmetric::<f64>(dim, 3);
                let a = half_stored(&full, uplo);
                let b = random::uniform::<f64>(m, n, 4);
                let c0 = random::uniform::<f64>(m, n, 5);
                let expect = dense(side, 1.5, &full, &b, -0.5, &c0);
                let mut c = c0.clone();
                symm(side, uplo, 1.5, a.as_ref(), b.as_ref(), -0.5, c.as_mut());
                norms::assert_allclose(c.as_ref(), expect.as_ref(), 1e-12, &format!("{side:?} {uplo:?}"));
            }
        }
    }

    #[test]
    fn beta_zero_overwrites() {
        let a = random::symmetric::<f64>(4, 1);
        let b = random::uniform::<f64>(4, 3, 2);
        let mut c = Matrix::from_fn(4, 3, |_, _| f64::NAN);
        symm(Side::Left, Uplo::Lower, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(c.as_slice().iter().all(|x| x.is_finite()));
    }
}
