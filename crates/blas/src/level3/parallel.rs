//! Pool-parallel blocked GEMM.
//!
//! Parallelizes the outermost (`jc`) loop of the blocked kernel: each
//! worker owns a disjoint column panel of `C`, packs its own buffers, and
//! never synchronizes with the others — the classic embarrassingly
//! parallel decomposition for `C ← A B` (each output column depends on
//! all of `A` but only its own columns of `B`). Panels are spawned on
//! the in-tree [`pool`], one scoped task per panel. When the whole
//! problem fits in a single panel (`n ≤ nc`) the scope machinery buys
//! nothing, so the call degrades to [`gemm_blocked`] directly.

use super::blocked::{gemm_blocked, macrokernel, pack_a, pack_b, panel_lens};
use super::kernel::{MR, NR};
use super::packbuf::with_pack_bufs;
use super::{check_gemm_dims, scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// `C ← α op(A) op(B) + β C`, column panels processed in parallel.
pub fn gemm_parallel<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = check_gemm_dims(op_a, &a, op_b, &b, &c);
    let mc = cfg.mc.max(MR).min(m.next_multiple_of(MR).max(MR));
    let kc = cfg.kc.max(1).min(k.max(1));
    // Panel width: split n so every pool worker gets some columns, but
    // never below the micro-tile width.
    let threads = pool::current_num_threads().max(1);
    let nc = cfg.nc.max(NR).min(n.div_ceil(threads).next_multiple_of(NR));

    // A single panel means no parallelism to extract — skip the scope
    // overhead and run the serial kernel with the original β.
    if n <= nc || threads == 1 {
        return gemm_blocked(cfg, alpha, op_a, a, op_b, b, beta, c);
    }

    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        // Degenerate product: only the β scaling remains.
        scale_c(beta, &mut c);
        return;
    }

    // Carve C into disjoint column-panel views up front.
    let mut panels: Vec<(usize, MatMut<'_, T>)> = Vec::with_capacity(n.div_ceil(nc));
    let mut rest = c;
    let mut jc = 0;
    while jc < n {
        let nb = nc.min(n - jc);
        let (head, tail) = rest.split_cols(nb);
        panels.push((jc, head));
        rest = tail;
        jc += nb;
    }

    pool::scope(|scope| {
        for (jc, mut cpanel) in panels {
            scope.spawn(move || {
                let nb = cpanel.ncols();
                let (a_len, b_len) = panel_lens(mc, kc, nb);
                with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
                    for pc in (0..k).step_by(kc) {
                        let kb = kc.min(k - pc);
                        pack_b(op_b, &b, pc, jc, kb, nb, packed_b);
                        // Each worker owns its panel of C outright, so the
                        // first rank update applies β — no pre-sweep, no
                        // cross-worker coordination.
                        let beta_eff = if pc == 0 { Some(beta) } else { None };
                        for ic in (0..m).step_by(mc) {
                            let mb = mc.min(m - ic);
                            pack_a(op_a, &a, ic, pc, mb, kb, packed_a);
                            // cpanel's column 0 is global column jc, so pass jc=0.
                            macrokernel(alpha, beta_eff, mb, kb, nb, packed_a, packed_b, &mut cpanel, ic, 0);
                        }
                    }
                });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::random;

    #[test]
    fn parallel_matches_blocked() {
        let pcfg = GemmConfig::parallel();
        let scfg = GemmConfig::blocked();
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (100, 37, 211), (5, 200, 3)] {
            let a = random::uniform::<f64>(m, k, 11);
            let b = random::uniform::<f64>(k, n, 12);
            let mut c1 = random::uniform::<f64>(m, n, 13);
            let mut c2 = c1.clone();
            super::super::gemm_blocked(
                &scfg,
                0.9,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                0.1,
                c1.as_mut(),
            );
            gemm_parallel(&pcfg, 0.9, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.1, c2.as_mut());
            matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_handles_narrow_matrices() {
        // n smaller than one micro-tile: single panel, delegates to the
        // serial kernel (including β handling) without spawning.
        let a = random::uniform::<f64>(50, 50, 1);
        let b = random::uniform::<f64>(50, 2, 2);
        let mut c1 = random::uniform::<f64>(50, 2, 3);
        let mut c2 = c1.clone();
        super::super::gemm_naive(1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c1.as_mut());
        gemm_parallel(
            &GemmConfig::parallel(),
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.0,
            c2.as_mut(),
        );
        matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, "narrow");
    }

    #[test]
    fn single_panel_fallback_preserves_beta_semantics() {
        // n ≤ nc forces the gemm_blocked fallback; β = 0 must still
        // overwrite NaN without reading it.
        let a = random::uniform::<f64>(20, 20, 4);
        let b = random::uniform::<f64>(20, 8, 5);
        let mut c = matrix::Matrix::from_fn(20, 8, |_, _| f64::NAN);
        gemm_parallel(
            &GemmConfig::parallel(),
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        assert!(c.as_slice().iter().all(|x| x.is_finite()));
    }
}
