//! Pool-parallel blocked GEMM: nested jc×ic loop parallelism.
//!
//! The 5-loop BLIS nest exposes two independent loops and this driver
//! uses both, the way *Implementing Strassen's Algorithm with BLIS*
//! partitions its loops across threads:
//!
//! - **jc (column groups).** `n` is carved into `jc_ways` balanced,
//!   `NR`-quantized column groups — one task each. Every group owns its
//!   columns of `C` and `B` outright, so groups never synchronize.
//! - **ic (row blocks).** Workers left over after the jc split
//!   (`ic_ways = threads / jc_ways`, the narrow-`n` regime where column
//!   groups alone cannot fill the machine) cooperate *inside* each
//!   group: per `(jc, pc)` step they first pack disjoint `NR`-panel
//!   ranges of the shared `B` panel, then each packs its own `A`
//!   row-panels and updates a disjoint row block of the `C` panel,
//!   sharing the packed `B` read-only — the Goto/BLIS recipe (pack `B`
//!   once per (jc, pc), many `A` packers against it).
//!
//! The split is *balanced by quanta* ([`balanced_quanta`]): `ways`
//! partitions differ by at most one `NR` (or `MR`) quantum and every
//! partition is non-empty, so a tiny `n` with many threads can no longer
//! produce zero-work panels next to idle workers (the pre-PR-7 clamp
//! `nc = min(nc, ⌈n/threads⌉ rounded to NR)` could strand a 1-column
//! panel while a worker sat idle).
//!
//! **Determinism contract.** Every element of `C` is produced by the
//! same floating-point operation sequence as [`gemm_blocked`] with the
//! same config: the `kc` chunking of `k` (identical — both use
//! [`clamp_blocking`]) fixes the per-element accumulation splits, the
//! micro-kernel accumulates each chunk in ascending `kk`, and β is
//! folded into the first `pc` write-back. Which task packs a panel or
//! which worker owns a row block re-partitions only the *iteration
//! space*, never a per-element reduction, so parallel results are
//! bitwise identical to serial ones — the property the scheduler
//! determinism tests pin end to end.

use super::blocked::{clamp_blocking, gemm_blocked, macrokernel, pack_a, pack_b, panel_lens};
use super::kernel::{MR, NR};
use super::packbuf::{with_pack_bufs, with_pack_slab};
use super::{check_gemm_dims, scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Split `quanta` indivisible work units over at most `ways` partitions:
/// returns per-partition quanta counts, all ≥ 1, differing by ≤ 1.
/// Returns fewer than `ways` entries when there aren't enough quanta to
/// give every partition one — never a zero-work partition.
pub(crate) fn balanced_quanta(quanta: usize, ways: usize) -> Vec<usize> {
    let p = ways.min(quanta).max(1);
    if quanta == 0 {
        return Vec::new();
    }
    let base = quanta / p;
    let extra = quanta % p;
    (0..p).map(|g| base + usize::from(g < extra)).collect()
}

/// Below this flop count the spawn/scope overhead outweighs any
/// parallel gain; run the serial kernel instead. (≈ a 64³ product.)
const MIN_PARALLEL_FLOPS: usize = 64 * 64 * 64;

/// `C ← α op(A) op(B) + β C`, jc×ic loops processed in parallel.
pub fn gemm_parallel<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = check_gemm_dims(op_a, &a, op_b, &b, &c);
    let threads = pool::current_num_threads().max(1);
    if threads == 1 || m.saturating_mul(k).saturating_mul(n) < MIN_PARALLEL_FLOPS {
        return gemm_blocked(cfg, alpha, op_a, a, op_b, b, beta, c);
    }
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        // Degenerate product: only the β scaling remains.
        return scale_c(beta, &mut c);
    }
    // Identical clamping to the serial kernel: same kc ⇒ same per-element
    // accumulation splits ⇒ bitwise-identical results (module docs).
    let (mc, kc, nc) = clamp_blocking(cfg, m, k, n);

    // Fill the machine column-groups-first (they share nothing), then
    // give leftover workers to the ic loop inside each group.
    let col_quanta = balanced_quanta(n.div_ceil(NR), threads);
    let jc_ways = col_quanta.len();
    let ic_ways = (threads / jc_ways).min(m.div_ceil(MR)).max(1);
    if jc_ways == 1 && ic_ways == 1 {
        return gemm_blocked(cfg, alpha, op_a, a, op_b, b, beta, c);
    }

    // Carve C into the balanced disjoint column-group views up front.
    let mut groups: Vec<(usize, MatMut<'_, T>)> = Vec::with_capacity(jc_ways);
    let mut rest = c;
    let mut jc = 0;
    for &quanta in &col_quanta {
        let nw = (quanta * NR).min(n - jc);
        let (head, tail) = rest.split_cols(nw);
        groups.push((jc, head));
        rest = tail;
        jc += nw;
    }

    pool::scope(|scope| {
        for (group, (jc0, cgroup)) in groups.into_iter().enumerate() {
            let (a_ref, b_ref) = (&a, &b);
            // Timeline tags (see pool::ring::tag) let the trace exporter
            // distinguish the GEMM task roles; they never affect
            // scheduling.
            let tag = pool::ring::tag::gemm_task(0, group as u8);
            scope.spawn_tagged(None, tag, move || {
                column_group(alpha, beta, op_a, a_ref, op_b, b_ref, cgroup, jc0, m, k, mc, kc, nc, ic_ways);
            });
        }
    });
}

/// One jc task: the pc/ic loops over a private column group
/// `C[:, jc0 .. jc0 + cgroup.ncols())`.
#[allow(clippy::too_many_arguments)]
fn column_group<T: Scalar>(
    alpha: T,
    beta: T,
    op_a: Op,
    a: &MatRef<'_, T>,
    op_b: Op,
    b: &MatRef<'_, T>,
    mut cgroup: MatMut<'_, T>,
    jc0: usize,
    m: usize,
    k: usize,
    mc: usize,
    kc: usize,
    nc: usize,
    ic_ways: usize,
) {
    let nw = cgroup.ncols();
    let mut jcc = 0;
    while jcc < nw {
        let nb = nc.min(nw - jcc);
        let (cpanel, tail) = cgroup.split_cols(nb);
        cgroup = tail;
        let jc = jc0 + jcc;
        if ic_ways == 1 {
            panel_serial(alpha, beta, op_a, a, op_b, b, cpanel, jc, m, k, mc, kc);
        } else {
            panel_nested(alpha, beta, op_a, a, op_b, b, cpanel, jc, m, k, mc, kc, ic_ways);
        }
        jcc += nb;
    }
}

/// All workers are consumed by the jc split: classic private 5-loop over
/// one `C` column panel, per-task pack buffers.
#[allow(clippy::too_many_arguments)]
fn panel_serial<T: Scalar>(
    alpha: T,
    beta: T,
    op_a: Op,
    a: &MatRef<'_, T>,
    op_b: Op,
    b: &MatRef<'_, T>,
    mut cpanel: MatMut<'_, T>,
    jc: usize,
    m: usize,
    k: usize,
    mc: usize,
    kc: usize,
) {
    let nb = cpanel.ncols();
    let (a_len, b_len) = panel_lens(mc, kc, nb);
    with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            pack_b(op_b, b, pc, jc, kb, nb, packed_b);
            // This task owns its panel of C outright, so the first rank
            // update applies β — no pre-sweep, no coordination.
            let beta_eff = if pc == 0 { Some(beta) } else { None };
            for ic in (0..m).step_by(mc) {
                let mb = mc.min(m - ic);
                pack_a(op_a, a, ic, pc, mb, kb, packed_a);
                // cpanel's column 0 is global column jc, so pass jc=0.
                macrokernel(alpha, beta_eff, mb, kb, nb, packed_a, packed_b, &mut cpanel, ic, 0);
            }
        }
    });
}

/// Narrow-`n` regime: `ic_ways` workers cooperate on one `C` column
/// panel. Per `(jc, pc)` step the shared `B` panel is packed
/// cooperatively (disjoint `NR`-panel ranges), then each worker packs
/// its own `A` row-panels and updates a disjoint row block against the
/// shared packed `B`.
#[allow(clippy::too_many_arguments)]
fn panel_nested<T: Scalar>(
    alpha: T,
    beta: T,
    op_a: Op,
    a: &MatRef<'_, T>,
    op_b: Op,
    b: &MatRef<'_, T>,
    mut cpanel: MatMut<'_, T>,
    jc: usize,
    m: usize,
    k: usize,
    mc: usize,
    kc: usize,
    ic_ways: usize,
) {
    let nb = cpanel.ncols();
    let bpanels = nb.div_ceil(NR);
    let row_quanta = balanced_quanta(m.div_ceil(MR), ic_ways);
    let (_, b_len) = panel_lens(mc, kc, nb);
    with_pack_slab::<T, _>(b_len, |slab| {
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            let beta_eff = if pc == 0 { Some(beta) } else { None };

            // Phase 1: cooperative B pack. The packed-B layout is
            // panel-major (panel q at q·NR·kb), so a panel range is a
            // contiguous slab chunk handed to its packer via
            // split_at_mut.
            let pack_ranges = balanced_quanta(bpanels, ic_ways);
            pool::scope(|s| {
                let mut rest: &mut [T] = &mut slab[..bpanels * NR * kb];
                let mut q0 = 0;
                for &panels in &pack_ranges {
                    let (chunk, tail) = rest.split_at_mut(panels * NR * kb);
                    rest = tail;
                    let cols = (panels * NR).min(nb - q0 * NR);
                    let jc_range = jc + q0 * NR;
                    let tag = pool::ring::tag::gemm_task(1, q0 as u8);
                    s.spawn_tagged(None, tag, move || pack_b(op_b, b, pc, jc_range, kb, cols, chunk));
                    q0 += panels;
                }
            });

            // Phase 2: parallel ic row blocks against the shared packed
            // B. Row views are rebuilt per pc step (they are moved into
            // the tasks), always along the same MR-quantized boundaries.
            let packed_b: &[T] = &slab[..bpanels * NR * kb];
            pool::scope(|s| {
                let mut rest = cpanel.rb_mut();
                let mut r0 = 0;
                for (block, &quanta) in row_quanta.iter().enumerate() {
                    let rows = (quanta * MR).min(m - r0);
                    let (crows, tail) = rest.split_rows(rows);
                    rest = tail;
                    let row0 = r0;
                    let tag = pool::ring::tag::gemm_task(2, block as u8);
                    s.spawn_tagged(None, tag, move || {
                        let mut crows = crows;
                        let a_len = mc.div_ceil(MR) * MR * kc;
                        with_pack_slab::<T, _>(a_len, |packed_a| {
                            for icc in (0..rows).step_by(mc) {
                                let mb = mc.min(rows - icc);
                                pack_a(op_a, a, row0 + icc, pc, mb, kb, packed_a);
                                macrokernel(
                                    alpha, beta_eff, mb, kb, nb, packed_a, packed_b, &mut crows, icc, 0,
                                );
                            }
                        });
                    });
                    r0 += rows;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::random;

    fn init() {
        let _ = pool::set_num_threads(4);
    }

    #[test]
    fn balanced_quanta_never_empty_and_off_by_at_most_one() {
        for quanta in 1..40 {
            for ways in 1..10 {
                let parts = balanced_quanta(quanta, ways);
                assert_eq!(parts.iter().sum::<usize>(), quanta, "q={quanta} w={ways}");
                assert!(parts.len() <= ways);
                assert!(parts.iter().all(|&p| p >= 1), "q={quanta} w={ways}: {parts:?}");
                let (min, max) = (parts.iter().min().unwrap(), parts.iter().max().unwrap());
                assert!(max - min <= 1, "q={quanta} w={ways}: {parts:?}");
            }
        }
        assert!(balanced_quanta(0, 4).is_empty());
    }

    #[test]
    fn parallel_matches_blocked() {
        init();
        let pcfg = GemmConfig::parallel();
        let scfg = GemmConfig::blocked();
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (100, 37, 211), (5, 200, 3), (300, 64, 17)] {
            let a = random::uniform::<f64>(m, k, 11);
            let b = random::uniform::<f64>(k, n, 12);
            let mut c1 = random::uniform::<f64>(m, n, 13);
            let mut c2 = c1.clone();
            super::super::gemm_blocked(
                &scfg,
                0.9,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                0.1,
                c1.as_mut(),
            );
            gemm_parallel(&pcfg, 0.9, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.1, c2.as_mut());
            matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_blocked() {
        init();
        // The determinism contract in the module docs, pinned directly:
        // same kc ⇒ same element-wise op order ⇒ equal bits, across both
        // the wide-n (jc) and narrow-n (nested ic) regimes and under
        // transposes.
        let pcfg = GemmConfig::parallel();
        let scfg = GemmConfig::blocked();
        for &(m, k, n) in &[(128usize, 96usize, 512usize), (256, 300, 20), (97, 41, 64)] {
            for (op_a, op_b) in
                [(Op::NoTrans, Op::NoTrans), (Op::Trans, Op::NoTrans), (Op::NoTrans, Op::Trans)]
            {
                let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
                let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
                let a = random::uniform::<f64>(ar, ac, 21);
                let b = random::uniform::<f64>(br, bc, 22);
                let mut c1 = random::uniform::<f64>(m, n, 23);
                let mut c2 = c1.clone();
                super::super::gemm_blocked(
                    &scfg,
                    1.25,
                    op_a,
                    a.as_ref(),
                    op_b,
                    b.as_ref(),
                    -0.5,
                    c1.as_mut(),
                );
                gemm_parallel(&pcfg, 1.25, op_a, a.as_ref(), op_b, b.as_ref(), -0.5, c2.as_mut());
                let ulps = testkit::max_ulp_diff_mat(c1.as_ref(), c2.as_ref());
                assert_eq!(ulps, 0, "{m}x{k}x{n} {op_a:?}/{op_b:?}: parallel differs from serial");
            }
        }
    }

    #[test]
    fn tiny_n_above_quantum_boundary_has_no_zero_work_panels() {
        init();
        // Regression (PR 7): n just above NR·threads used to clamp the
        // panel width so one worker got a 1-column panel while another
        // sat idle; with balanced quanta every group gets ≥ NR columns
        // (except possibly the last, never zero) and results stay
        // correct. m·k·n must clear MIN_PARALLEL_FLOPS so the parallel
        // path actually runs.
        let threads = pool::current_num_threads();
        let n = NR * threads + 1;
        let (m, k) = (128usize, 160usize);
        assert!(m * k * n >= MIN_PARALLEL_FLOPS);
        let quanta = balanced_quanta(n.div_ceil(NR), threads);
        assert!(quanta.iter().all(|&q| q >= 1));
        let a = random::uniform::<f64>(m, k, 31);
        let b = random::uniform::<f64>(k, n, 32);
        let mut c1 = random::uniform::<f64>(m, n, 33);
        let mut c2 = c1.clone();
        super::super::gemm_blocked(
            &GemmConfig::blocked(),
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.75,
            c1.as_mut(),
        );
        gemm_parallel(
            &GemmConfig::parallel(),
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.75,
            c2.as_mut(),
        );
        assert_eq!(testkit::max_ulp_diff_mat(c1.as_ref(), c2.as_ref()), 0, "n={n}");
    }

    #[test]
    fn narrow_n_uses_nested_rows_and_matches() {
        init();
        // n below one NR quantum per thread: the jc split degenerates and
        // the nested ic path must carry the work.
        let a = random::uniform::<f64>(500, 120, 41);
        let b = random::uniform::<f64>(120, 5, 42);
        let mut c1 = random::uniform::<f64>(500, 5, 43);
        let mut c2 = c1.clone();
        super::super::gemm_blocked(
            &GemmConfig::blocked(),
            2.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.0,
            c1.as_mut(),
        );
        gemm_parallel(
            &GemmConfig::parallel(),
            2.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.0,
            c2.as_mut(),
        );
        assert_eq!(testkit::max_ulp_diff_mat(c1.as_ref(), c2.as_ref()), 0);
    }

    #[test]
    fn parallel_handles_narrow_matrices() {
        init();
        // n smaller than one micro-tile: single panel, still correct
        // (and below MIN_PARALLEL_FLOPS, so it delegates to the serial
        // kernel including β handling without spawning).
        let a = random::uniform::<f64>(50, 50, 1);
        let b = random::uniform::<f64>(50, 2, 2);
        let mut c1 = random::uniform::<f64>(50, 2, 3);
        let mut c2 = c1.clone();
        super::super::gemm_naive(1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c1.as_mut());
        gemm_parallel(
            &GemmConfig::parallel(),
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.0,
            c2.as_mut(),
        );
        matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, "narrow");
    }

    #[test]
    fn single_panel_fallback_preserves_beta_semantics() {
        init();
        // β = 0 must overwrite NaN without reading it, in every regime.
        for (m, n) in [(20usize, 8usize), (128, 25), (500, 5)] {
            let a = random::uniform::<f64>(m, 160, 4);
            let b = random::uniform::<f64>(160, n, 5);
            let mut c = matrix::Matrix::from_fn(m, n, |_, _| f64::NAN);
            gemm_parallel(
                &GemmConfig::parallel(),
                1.0,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
            assert!(c.as_slice().iter().all(|x| x.is_finite()), "{m}x{n}");
        }
    }
}
