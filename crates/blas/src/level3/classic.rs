//! The pre-5-loop blocked GEMM, preserved verbatim as a baseline.
//!
//! This is the kernel the earlier PRs tuned and benchmarked: a β
//! pre-sweep over all of `C` followed by the same `jc → pc → ic` packed
//! loop nest, with an accumulate-only macro-kernel walking A-row panels
//! one at a time. It shares [`pack_a`]/[`pack_b`] (the packed formats
//! never changed) but none of the 5-loop rewrite's improvements: no β
//! fold into the first rank update, no paired-panel micro-kernel
//! dispatch, no clamping of the blocking to the problem shape.
//!
//! It exists for two reasons:
//!
//! * **benchmark baseline** — `BENCH_PR6.json`'s regression gates are
//!   ratios of the new [`super::gemm_blocked`] (and of `dgefmm`) against
//!   this function, measured in the same process;
//! * **conformance reference** — the rewrite is a pure reorganization,
//!   so `tests/kernel_conformance.rs` pins the new kernel to this one
//!   *bitwise* (for β ≠ 0 paths; see the test for the `-0.0` caveat).
//!
//! It is deliberately not reachable from [`super::GemmConfig`]: nothing
//! in the library dispatches here.

use super::blocked::{pack_a, pack_b, panel_lens};
use super::kernel::{microkernel, AccTile, MR, NR};
use super::packbuf::with_pack_bufs;
use super::{check_gemm_dims, scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Accumulate-only macro-kernel of the classic formulation.
fn macrokernel_classic<T: Scalar>(
    alpha: T,
    mb: usize,
    kb: usize,
    nb: usize,
    packed_a: &[T],
    packed_b: &[T],
    c: &mut MatMut<'_, T>,
    ic: usize,
    jc: usize,
) {
    let mpanels = mb.div_ceil(MR);
    let npanels = nb.div_ceil(NR);
    for qn in 0..npanels {
        let col0 = qn * NR;
        let cols = NR.min(nb - col0);
        let pb = &packed_b[qn * NR * kb..(qn + 1) * NR * kb];
        for qm in 0..mpanels {
            let row0 = qm * MR;
            let rows = MR.min(mb - row0);
            let pa = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let mut acc: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel(kb, pa, pb, &mut acc);
            // Write-back of the valid part of the tile.
            for (cc, acc_col) in acc.iter().enumerate().take(cols) {
                let j = jc + col0 + cc;
                for (r, &v) in acc_col.iter().enumerate().take(rows) {
                    let i = ic + row0 + r;
                    // SAFETY: i < m, j < n by construction of the blocking.
                    unsafe {
                        *c.get_unchecked_mut(i, j) += alpha * v;
                    }
                }
            }
        }
    }
}

/// `C ← α op(A) op(B) + β C`, classic formulation (β pre-sweep, unclamped
/// blocking, single-panel macro-kernel).
pub fn gemm_blocked_classic<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = check_gemm_dims(op_a, &a, op_b, &b, &c);
    scale_c(beta, &mut c);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    let mc = cfg.mc.max(MR);
    let kc = cfg.kc.max(1);
    let nc = cfg.nc.max(NR);

    let (a_len, b_len) = panel_lens(mc, kc, nc);
    with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b(op_b, &b, pc, jc, kb, nb, packed_b);
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a(op_a, &a, ic, pc, mb, kb, packed_a);
                    macrokernel_classic(alpha, mb, kb, nb, packed_a, packed_b, &mut c, ic, jc);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::random;

    #[test]
    fn classic_matches_naive() {
        let cfg = GemmConfig { algo: super::super::GemmAlgo::Blocked, mc: 16, kc: 12, nc: 20 };
        for &(m, k, n) in &[(9usize, 13usize, 11usize), (31, 7, 45), (40, 40, 40)] {
            let a = random::uniform::<f64>(m, k, 4);
            let b = random::uniform::<f64>(k, n, 5);
            let mut c1 = random::uniform::<f64>(m, n, 6);
            let mut c2 = c1.clone();
            super::super::gemm_naive(1.3, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.7, c1.as_mut());
            gemm_blocked_classic(
                &cfg,
                1.3,
                Op::NoTrans,
                a.as_ref(),
                Op::NoTrans,
                b.as_ref(),
                0.7,
                c2.as_mut(),
            );
            matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, &format!("{m}x{k}x{n}"));
        }
    }
}
