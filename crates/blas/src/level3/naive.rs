//! Unblocked reference GEMM kernel.
//!
//! Deliberately simple: a `j-p-i` loop nest (column-major friendly) with
//! no packing or tiling. It doubles as (a) the correctness oracle and
//! (b) the "slow machine" profile in the experiments, where its early
//! memory-bandwidth collapse pushes the Strassen crossover *down*.

use super::scale_c;
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// `C ← α op(A) op(B) + β C` via the textbook triple loop.
pub fn gemm_naive<T: Scalar>(
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = super::check_gemm_dims(op_a, &a, op_b, &b, &c);
    scale_c(beta, &mut c);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (op_a, op_b) {
        (Op::NoTrans, Op::NoTrans) => {
            // c[:,j] += alpha * b[p,j] * a[:,p] — pure axpy sweeps.
            for j in 0..n {
                for p in 0..k {
                    // SAFETY: p < k, j < n are in bounds for B.
                    let bpj = alpha * unsafe { *b.get_unchecked(p, j) };
                    if bpj == T::ZERO {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += bpj * acol[i];
                    }
                }
            }
        }
        (Op::Trans, Op::NoTrans) => {
            // c[i,j] += alpha * dot(a[:,i], b[:,j]).
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = T::ZERO;
                    for p in 0..k {
                        s += acol[p] * bcol[p];
                    }
                    let ccol = c.col_mut(j);
                    ccol[i] += alpha * s;
                }
            }
        }
        (Op::NoTrans, Op::Trans) => {
            for j in 0..n {
                for p in 0..k {
                    // SAFETY: j < n <= b.nrows(), p < k <= b.ncols().
                    let bpj = alpha * unsafe { *b.get_unchecked(j, p) };
                    if bpj == T::ZERO {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += bpj * acol[i];
                    }
                }
            }
        }
        (Op::Trans, Op::Trans) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = T::ZERO;
                    for p in 0..k {
                        // SAFETY: j < n <= b.nrows(), p < k <= b.ncols().
                        s += acol[p] * unsafe { *b.get_unchecked(j, p) };
                    }
                    let ccol = c.col_mut(j);
                    ccol[i] += alpha * s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::Matrix;

    #[test]
    fn small_known_product() {
        // [1 2] [5 6]   [19 22]
        // [3 4] [7 8] = [43 50]
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_naive(1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        assert_eq!(c, Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn transpose_pairs_agree() {
        // (AᵀBᵀ) computed directly equals (BA)ᵀ.
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let b = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64));
        let mut c1 = Matrix::<f64>::zeros(2, 4);
        gemm_naive(1.0, Op::Trans, a.as_ref(), Op::Trans, b.as_ref(), 0.0, c1.as_mut());
        let mut ba = Matrix::<f64>::zeros(4, 2);
        gemm_naive(1.0, Op::NoTrans, b.as_ref(), Op::NoTrans, a.as_ref(), 0.0, ba.as_mut());
        assert_eq!(c1, ba.transposed());
    }
}
