//! Cache-blocked, packing GEMM kernel (BLIS/Goto 5-loop nest).
//!
//! Loop structure, outermost first: `jc` over `nc`-wide column panels of
//! `op(B)` (L3), `pc` over `kc`-deep rank panels packing `op(B)` once
//! per `(jc, pc)` (L1-sized micro-panels), `ic` over `mc`-tall row
//! panels packing `op(A)` once per `(pc, ic)` (L2-resident), then the
//! macro-kernel sweeps `MR x NR` register tiles over the packed panels —
//! in adjacent *pairs* of row panels on AVX-512 parts (see
//! [`super::kernel`]). Packing also absorbs the transpose, so
//! `op = Trans` costs nothing extra in the inner loops — which is how
//! the vendor DGEMMs the paper built on behave.
//!
//! `β` is folded into the first `pc` block's tile write-back instead of
//! a standalone pre-sweep: `β = 0` becomes a pure store (no read of
//! `C`), and a general `β` costs one fused scale-accumulate pass — one
//! full sweep of `C` saved either way. The fold preserves bitwise
//! results against the pre-sweep formulation because the same scalar
//! operations run in the same order per element.
//!
//! Blocking parameters come from [`super::GemmConfig`] (see
//! [`super::params`] for the machine-derived defaults) and are clamped
//! to the problem shape, so small multiplies lease proportionally small
//! pack buffers ([`super::packbuf`]) and steady-state calls allocate
//! nothing.

use super::kernel::{microkernel, microkernel_x2, AccTile, MR, NR};
use super::packbuf::with_pack_bufs;
use super::{check_gemm_dims, scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Element `(i, p)` of `op(A)` given the stored `a`.
#[inline(always)]
unsafe fn op_at<T: Scalar>(op: Op, a: &MatRef<'_, T>, i: usize, p: usize) -> T {
    match op {
        Op::NoTrans => *a.get_unchecked(i, p),
        Op::Trans => *a.get_unchecked(p, i),
    }
}

/// Pack the `mb x kb` block of `op(A)` starting at `(ic, pc)` into
/// `buf` as row panels of height `MR`, zero-padded to a multiple of `MR`.
///
/// Layout: panel `q` (rows `q*MR ..`) occupies `buf[q*MR*kb ..]`, with
/// element `(r, kk)` at `q*MR*kb + kk*MR + r`.
pub(crate) fn pack_a<T: Scalar>(
    op: Op,
    a: &MatRef<'_, T>,
    ic: usize,
    pc: usize,
    mb: usize,
    kb: usize,
    buf: &mut [T],
) {
    let panels = mb.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kb);
    for q in 0..panels {
        let row0 = q * MR;
        let rows = MR.min(mb - row0);
        let base = q * MR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * MR..base + kk * MR + MR];
            for (r, d) in dst.iter_mut().enumerate().take(rows) {
                // SAFETY: ic+row0+r < ic+mb <= op(A).nrows, pc+kk < op(A).ncols.
                *d = unsafe { op_at(op, a, ic + row0 + r, pc + kk) };
            }
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// Pack the `kb x nb` block of `op(B)` starting at `(pc, jc)` into `buf`
/// as column panels of width `NR`, zero-padded.
///
/// Layout: panel `q` (cols `q*NR ..`) occupies `buf[q*NR*kb ..]`, with
/// element `(kk, cc)` at `q*NR*kb + kk*NR + cc`.
pub(crate) fn pack_b<T: Scalar>(
    op: Op,
    b: &MatRef<'_, T>,
    pc: usize,
    jc: usize,
    kb: usize,
    nb: usize,
    buf: &mut [T],
) {
    let panels = nb.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kb);
    for q in 0..panels {
        let col0 = q * NR;
        let cols = NR.min(nb - col0);
        let base = q * NR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * NR..base + kk * NR + NR];
            for (cc, d) in dst.iter_mut().enumerate().take(cols) {
                // SAFETY: pc+kk < op(B).nrows, jc+col0+cc < op(B).ncols.
                *d = unsafe { op_at(op, b, pc + kk, jc + col0 + cc) };
            }
            for d in dst.iter_mut().skip(cols) {
                *d = T::ZERO;
            }
        }
    }
}

/// Scatter one accumulator tile into `C` at `(i0, j0)`.
///
/// `beta = None` accumulates; `Some(0)` is a pure store (no read of the
/// destination); any other `Some(b)` fuses the scale into the write. The
/// scalar sequences match the classic pre-sweep formulation bitwise:
/// `Some(b)` computes `b·d + α·v` exactly as `scale` + `+=` did, and
/// `Some(1)`/`None` skip the (exact) multiply by one.
#[inline(always)]
pub(crate) fn write_tile<T: Scalar>(
    c: &mut MatMut<'_, T>,
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    alpha: T,
    beta: Option<T>,
    acc: &AccTile<T>,
) {
    let ld = c.ld();
    // Hoist the destination base pointer: at leaf-sized `kb` the
    // per-column slice checks of safe indexing cost as much as the
    // micro-kernel itself.
    let base = c.as_mut_ptr();
    for (cc, acc_col) in acc.iter().enumerate().take(cols) {
        // SAFETY: rows i0..i0+rows of column j0+cc are in bounds by
        // construction of the blocking.
        let cseg = unsafe { core::slice::from_raw_parts_mut(base.add((j0 + cc) * ld + i0), rows) };
        match beta {
            None => {
                for (d, &v) in cseg.iter_mut().zip(acc_col) {
                    *d += alpha * v;
                }
            }
            Some(b) if b == T::ZERO => {
                for (d, &v) in cseg.iter_mut().zip(acc_col) {
                    *d = alpha * v;
                }
            }
            Some(b) if b == T::ONE => {
                for (d, &v) in cseg.iter_mut().zip(acc_col) {
                    *d += alpha * v;
                }
            }
            Some(b) => {
                for (d, &v) in cseg.iter_mut().zip(acc_col) {
                    *d = b * *d + alpha * v;
                }
            }
        }
    }
}

/// Inner macro-kernel: multiply one packed `mb x kb` A-block by one packed
/// `kb x nb` B-panel into the corresponding region of `C`, walking the
/// A-row panels in pairs so AVX-512 parts run the fused `2·MR x NR`
/// micro-kernel. `beta` carries the first-`pc`-block fold (see
/// [`write_tile`]); pass `None` on later rank updates.
pub(crate) fn macrokernel<T: Scalar>(
    alpha: T,
    beta: Option<T>,
    mb: usize,
    kb: usize,
    nb: usize,
    packed_a: &[T],
    packed_b: &[T],
    c: &mut MatMut<'_, T>,
    ic: usize,
    jc: usize,
) {
    let mpanels = mb.div_ceil(MR);
    let npanels = nb.div_ceil(NR);
    for qn in 0..npanels {
        let col0 = qn * NR;
        let cols = NR.min(nb - col0);
        let pb = &packed_b[qn * NR * kb..(qn + 1) * NR * kb];
        let mut qm = 0;
        while qm + 2 <= mpanels {
            let pa0 = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let pa1 = &packed_a[(qm + 1) * MR * kb..(qm + 2) * MR * kb];
            let mut acc0: AccTile<T> = [[T::ZERO; MR]; NR];
            let mut acc1: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel_x2(kb, pa0, pa1, pb, &mut acc0, &mut acc1);
            let rows0 = MR.min(mb - qm * MR);
            let rows1 = MR.min(mb - (qm + 1) * MR);
            write_tile(c, ic + qm * MR, jc + col0, rows0, cols, alpha, beta, &acc0);
            write_tile(c, ic + (qm + 1) * MR, jc + col0, rows1, cols, alpha, beta, &acc1);
            qm += 2;
        }
        if qm < mpanels {
            let pa = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let mut acc: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel(kb, pa, pb, &mut acc);
            let rows = MR.min(mb - qm * MR);
            write_tile(c, ic + qm * MR, jc + col0, rows, cols, alpha, beta, &acc);
        }
    }
}

/// Blocking parameters clamped to the problem shape: `mc`/`nc` to the
/// dimension rounded up to a whole micro-tile, `kc` to `k`. Degenerate
/// configured values (zero, below a micro-tile) are raised to the legal
/// floor, so *any* `(mc, kc, nc)` triple produces a correct multiply.
pub(crate) fn clamp_blocking(cfg: &GemmConfig, m: usize, k: usize, n: usize) -> (usize, usize, usize) {
    let mc = cfg.mc.max(MR).min(m.next_multiple_of(MR).max(MR));
    let kc = cfg.kc.max(1).min(k.max(1));
    let nc = cfg.nc.max(NR).min(n.next_multiple_of(NR).max(NR));
    (mc, kc, nc)
}

/// Packed-panel lengths for one `(mc, kc, nc)` blocking — shared with the
/// parallel and fused drivers.
pub(crate) fn panel_lens(mc: usize, kc: usize, nc: usize) -> (usize, usize) {
    (mc.div_ceil(MR) * MR * kc, nc.div_ceil(NR) * NR * kc)
}

/// Pack-buffer requirement (in elements of the destination type) of one
/// [`gemm_blocked`] call at shape `m x k x n`: `(A-panel, B-panel)`
/// lengths after problem clamping. Exposed for the Table-1 memory
/// accounting tests.
pub fn gemm_pack_elements(cfg: &GemmConfig, m: usize, k: usize, n: usize) -> (usize, usize) {
    let (mc, kc, nc) = clamp_blocking(cfg, m, k, n);
    panel_lens(mc, kc, nc)
}

/// `C ← α op(A) op(B) + β C` with cache blocking and packing.
pub fn gemm_blocked<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = check_gemm_dims(op_a, &a, op_b, &b, &c);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        // Degenerate product: only the β scaling remains.
        scale_c(beta, &mut c);
        return;
    }
    let (mc, kc, nc) = clamp_blocking(cfg, m, k, n);
    let (a_len, b_len) = panel_lens(mc, kc, nc);
    with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b(op_b, &b, pc, jc, kb, nb, packed_b);
                // The first rank update of each C region applies β.
                let beta_eff = if pc == 0 { Some(beta) } else { None };
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a(op_a, &a, ic, pc, mb, kb, packed_a);
                    macrokernel(alpha, beta_eff, mb, kb, nb, packed_a, packed_b, &mut c, ic, jc);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    #[test]
    fn pack_a_layout_notrans() {
        let a = Matrix::from_fn(5, 3, |i, j| (i * 10 + j) as f64);
        let mut buf = vec![-1.0f64; 5usize.div_ceil(MR) * MR * 3];
        pack_a(Op::NoTrans, &a.as_ref(), 0, 0, 5, 3, &mut buf);
        // panel 0, element (r=2, kk=1) => buf[1*MR + 2] == a[2,1] == 21
        assert_eq!(buf[MR + 2], 21.0);
        // zero padding for rows 5..MR
        assert_eq!(buf[5], 0.0);
        assert_eq!(buf[MR + MR - 1], 0.0);
    }

    #[test]
    fn pack_a_absorbs_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        // op(A) = Aᵀ is 5x3; element (i=4, p=2) of op(A) is a[2,4] = 24.
        let mut buf = vec![0.0f64; MR * 3];
        pack_a(Op::Trans, &a.as_ref(), 0, 0, 5, 3, &mut buf);
        assert_eq!(buf[2 * MR + 4], 24.0);
    }

    #[test]
    fn pack_b_layout() {
        // One full panel plus a 2-column remainder panel.
        let nb = NR + 2;
        let b = Matrix::from_fn(3, nb, |i, j| (i * 10 + j) as f64);
        let mut buf = vec![-1.0f64; nb.div_ceil(NR) * NR * 3];
        pack_b(Op::NoTrans, &b.as_ref(), 0, 0, 3, nb, &mut buf);
        // panel 0: element (kk=2, cc=3) at 2*NR+3 => b[2,3] = 23
        assert_eq!(buf[2 * NR + 3], 23.0);
        // panel 1 holds cols NR.. with padding at cc >= 2
        let base = NR * 3;
        assert_eq!(buf[base], NR as f64); // (kk=0, cc=0) -> b[0, NR]
        assert_eq!(buf[base + 2], 0.0); // padded col
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let cfg = GemmConfig { algo: super::super::GemmAlgo::Blocked, mc: 16, kc: 12, nc: 20 };
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (9, 13, 11), (31, 7, 45), (40, 40, 40)] {
            let a = random::uniform::<f64>(m, k, 4);
            let b = random::uniform::<f64>(k, n, 5);
            let mut c1 = random::uniform::<f64>(m, n, 6);
            let mut c2 = c1.clone();
            super::super::gemm_naive(1.3, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.7, c1.as_mut());
            gemm_blocked(&cfg, 1.3, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.7, c2.as_mut());
            matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn matches_classic_bitwise() {
        // The 5-loop rewrite (β fold, paired panels, clamped blocking) is
        // a pure reorganization: identical scalar operation sequences per
        // element, so the result must equal the preserved classic kernel
        // bit for bit.
        let cfg = GemmConfig::blocked();
        for &(m, k, n) in &[(40usize, 33usize, 50usize), (129, 64, 96)] {
            for beta in [0.0, 1.0, 0.5] {
                let a = random::uniform::<f64>(m, k, 20);
                // op_b = Trans, so B is stored n x k.
                let b = random::uniform::<f64>(n, k, 21);
                let c0 = random::uniform::<f64>(m, n, 22);
                let mut c_new = c0.clone();
                let mut c_old = c0.clone();
                gemm_blocked(&cfg, 1.2, Op::NoTrans, a.as_ref(), Op::Trans, b.as_ref(), beta, c_new.as_mut());
                super::super::gemm_blocked_classic(
                    &cfg,
                    1.2,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::Trans,
                    b.as_ref(),
                    beta,
                    c_old.as_mut(),
                );
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            c_new.at(i, j).to_bits(),
                            c_old.at(i, j).to_bits(),
                            "({i},{j}) {m}x{k}x{n} β={beta}"
                        );
                    }
                }
            }
        }
    }
}
