//! Cache-blocked, packing GEMM kernel (BLIS-style loop nest).
//!
//! Loop structure, outermost first: `jc` over `NC`-wide column panels of
//! `op(B)`, `pc` over `KC`-deep rank panels (packing `op(B)` once), `ic`
//! over `MC`-tall row panels (packing `op(A)` once), then an `MR x NR`
//! register-tiled micro-kernel (see [`super::kernel`]). Packing also
//! absorbs the transpose, so `op = Trans` costs nothing extra in the
//! inner loops — which is how the vendor DGEMMs the paper built on
//! behave. Packed panels live in a per-thread reusable buffer
//! ([`super::packbuf`]), so steady-state calls allocate nothing.

use super::kernel::{microkernel, AccTile, MR, NR};
use super::packbuf::with_pack_bufs;
use super::{check_gemm_dims, scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Element `(i, p)` of `op(A)` given the stored `a`.
#[inline(always)]
unsafe fn op_at<T: Scalar>(op: Op, a: &MatRef<'_, T>, i: usize, p: usize) -> T {
    match op {
        Op::NoTrans => *a.get_unchecked(i, p),
        Op::Trans => *a.get_unchecked(p, i),
    }
}

/// Pack the `mb x kb` block of `op(A)` starting at `(ic, pc)` into
/// `buf` as row panels of height `MR`, zero-padded to a multiple of `MR`.
///
/// Layout: panel `q` (rows `q*MR ..`) occupies `buf[q*MR*kb ..]`, with
/// element `(r, kk)` at `q*MR*kb + kk*MR + r`.
pub(crate) fn pack_a<T: Scalar>(
    op: Op,
    a: &MatRef<'_, T>,
    ic: usize,
    pc: usize,
    mb: usize,
    kb: usize,
    buf: &mut [T],
) {
    let panels = mb.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kb);
    for q in 0..panels {
        let row0 = q * MR;
        let rows = MR.min(mb - row0);
        let base = q * MR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * MR..base + kk * MR + MR];
            for (r, d) in dst.iter_mut().enumerate().take(rows) {
                // SAFETY: ic+row0+r < ic+mb <= op(A).nrows, pc+kk < op(A).ncols.
                *d = unsafe { op_at(op, a, ic + row0 + r, pc + kk) };
            }
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// Pack the `kb x nb` block of `op(B)` starting at `(pc, jc)` into `buf`
/// as column panels of width `NR`, zero-padded.
///
/// Layout: panel `q` (cols `q*NR ..`) occupies `buf[q*NR*kb ..]`, with
/// element `(kk, cc)` at `q*NR*kb + kk*NR + cc`.
pub(crate) fn pack_b<T: Scalar>(
    op: Op,
    b: &MatRef<'_, T>,
    pc: usize,
    jc: usize,
    kb: usize,
    nb: usize,
    buf: &mut [T],
) {
    let panels = nb.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kb);
    for q in 0..panels {
        let col0 = q * NR;
        let cols = NR.min(nb - col0);
        let base = q * NR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * NR..base + kk * NR + NR];
            for (cc, d) in dst.iter_mut().enumerate().take(cols) {
                // SAFETY: pc+kk < op(B).nrows, jc+col0+cc < op(B).ncols.
                *d = unsafe { op_at(op, b, pc + kk, jc + col0 + cc) };
            }
            for d in dst.iter_mut().skip(cols) {
                *d = T::ZERO;
            }
        }
    }
}

/// Inner macro-kernel: multiply one packed `mb x kb` A-block by one packed
/// `kb x nb` B-panel, accumulating `alpha * product` into the
/// corresponding region of `C`.
pub(crate) fn macrokernel<T: Scalar>(
    alpha: T,
    mb: usize,
    kb: usize,
    nb: usize,
    packed_a: &[T],
    packed_b: &[T],
    c: &mut MatMut<'_, T>,
    ic: usize,
    jc: usize,
) {
    let mpanels = mb.div_ceil(MR);
    let npanels = nb.div_ceil(NR);
    for qn in 0..npanels {
        let col0 = qn * NR;
        let cols = NR.min(nb - col0);
        let pb = &packed_b[qn * NR * kb..(qn + 1) * NR * kb];
        for qm in 0..mpanels {
            let row0 = qm * MR;
            let rows = MR.min(mb - row0);
            let pa = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let mut acc: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel(kb, pa, pb, &mut acc);
            // Write-back of the valid part of the tile.
            for (cc, acc_col) in acc.iter().enumerate().take(cols) {
                let j = jc + col0 + cc;
                for (r, &v) in acc_col.iter().enumerate().take(rows) {
                    let i = ic + row0 + r;
                    // SAFETY: i < m, j < n by construction of the blocking.
                    unsafe {
                        *c.get_unchecked_mut(i, j) += alpha * v;
                    }
                }
            }
        }
    }
}

/// Packed-panel lengths for one `(mc, kc, nc)` blocking — shared with the
/// parallel and fused drivers.
pub(crate) fn panel_lens(mc: usize, kc: usize, nc: usize) -> (usize, usize) {
    (mc.div_ceil(MR) * MR * kc, nc.div_ceil(NR) * NR * kc)
}

/// `C ← α op(A) op(B) + β C` with cache blocking and packing.
pub fn gemm_blocked<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, k, n) = check_gemm_dims(op_a, &a, op_b, &b, &c);
    scale_c(beta, &mut c);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    let mc = cfg.mc.max(MR);
    let kc = cfg.kc.max(1);
    let nc = cfg.nc.max(NR);

    let (a_len, b_len) = panel_lens(mc, kc, nc);
    with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b(op_b, &b, pc, jc, kb, nb, packed_b);
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a(op_a, &a, ic, pc, mb, kb, packed_a);
                    macrokernel(alpha, mb, kb, nb, packed_a, packed_b, &mut c, ic, jc);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    #[test]
    fn pack_a_layout_notrans() {
        let a = Matrix::from_fn(5, 3, |i, j| (i * 10 + j) as f64);
        let mut buf = vec![-1.0f64; 5usize.div_ceil(MR) * MR * 3];
        pack_a(Op::NoTrans, &a.as_ref(), 0, 0, 5, 3, &mut buf);
        // panel 0, element (r=2, kk=1) => buf[1*MR + 2] == a[2,1] == 21
        assert_eq!(buf[MR + 2], 21.0);
        // zero padding for rows 5..MR
        assert_eq!(buf[5], 0.0);
        assert_eq!(buf[MR + MR - 1], 0.0);
    }

    #[test]
    fn pack_a_absorbs_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        // op(A) = Aᵀ is 5x3; element (i=4, p=2) of op(A) is a[2,4] = 24.
        let mut buf = vec![0.0f64; MR * 3];
        pack_a(Op::Trans, &a.as_ref(), 0, 0, 5, 3, &mut buf);
        assert_eq!(buf[2 * MR + 4], 24.0);
    }

    #[test]
    fn pack_b_layout() {
        // One full panel plus a 2-column remainder panel.
        let nb = NR + 2;
        let b = Matrix::from_fn(3, nb, |i, j| (i * 10 + j) as f64);
        let mut buf = vec![-1.0f64; nb.div_ceil(NR) * NR * 3];
        pack_b(Op::NoTrans, &b.as_ref(), 0, 0, 3, nb, &mut buf);
        // panel 0: element (kk=2, cc=3) at 2*NR+3 => b[2,3] = 23
        assert_eq!(buf[2 * NR + 3], 23.0);
        // panel 1 holds cols NR.. with padding at cc >= 2
        let base = NR * 3;
        assert_eq!(buf[base], NR as f64); // (kk=0, cc=0) -> b[0, NR]
        assert_eq!(buf[base + 2], 0.0); // padded col
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let cfg = GemmConfig { algo: super::super::GemmAlgo::Blocked, mc: 16, kc: 12, nc: 20 };
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (9, 13, 11), (31, 7, 45), (40, 40, 40)] {
            let a = random::uniform::<f64>(m, k, 4);
            let b = random::uniform::<f64>(k, n, 5);
            let mut c1 = random::uniform::<f64>(m, n, 6);
            let mut c2 = c1.clone();
            super::super::gemm_naive(1.3, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.7, c1.as_mut());
            gemm_blocked(&cfg, 1.3, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.7, c2.as_mut());
            matrix::norms::assert_allclose(c1.as_ref(), c2.as_ref(), 1e-13, &format!("{m}x{k}x{n}"));
        }
    }
}
