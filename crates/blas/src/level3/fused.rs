//! Fused Strassen/GEMM kernels: operand-sum packing and
//! multi-destination write-back.
//!
//! A Strassen product has the shape `P = (Σ γ_t · A_t)(Σ γ_t · B_t)`
//! followed by `C_d += δ_d · P` for one or more quadrants `C_d`. The
//! classical schedules materialize the operand sums into temporaries and
//! sweep the quadrant updates as standalone add passes; both cost a full
//! read+write of quadrant-sized data per pass. Following Huang et al.
//! (*Strassen's Algorithm Reloaded* / the BLIS practical-Strassen line),
//! this module folds the sums into the GEMM *packing* step — the packed
//! panel is built from `Σ γ_t · op(X_t)` element-wise, at no extra memory
//! traffic since packing reads the operands anyway — and folds the
//! quadrant updates into the micro-tile *write-back*, scattering each
//! `MR x NR` accumulator into every destination while it is still in
//! registers.
//!
//! [`gemm_fused`] computes, for each destination `d`:
//!
//! ```text
//! C_d ← α · δ_d · (Σ γ_t op(A_t)) (Σ γ_t op(B_t)) + β_d · C_d
//! ```
//!
//! where `β_d` is optional (absent means pure accumulation, `β_d = 1`).
//!
//! # Example
//!
//! One fused call computes `P = (A1 + A2) · B` and scatters `+P` and `−P`
//! into two destinations — the shape of a Winograd product feeding two
//! `C` quadrants — without materializing `A1 + A2` or `P`:
//!
//! ```
//! use blas::level2::Op;
//! use blas::level3::fused::{gemm_fused, DestSpec, SumOperand};
//! use blas::level3::{gemm, GemmConfig};
//! use matrix::{norms, random, Matrix};
//!
//! let (m, k, n) = (24, 20, 28);
//! let a1 = random::uniform::<f64>(m, k, 1);
//! let a2 = random::uniform::<f64>(m, k, 2);
//! let b = random::uniform::<f64>(k, n, 3);
//! let cfg = GemmConfig::blocked();
//!
//! let mut c_plus = Matrix::zeros(m, n);
//! let mut c_minus = Matrix::zeros(m, n);
//! let a_sum = SumOperand::new(Op::NoTrans, &[(1.0, a1.as_ref()), (1.0, a2.as_ref())]);
//! let b_sum = SumOperand::single(Op::NoTrans, b.as_ref());
//! let mut dests =
//!     [DestSpec::init(c_plus.as_mut(), 1.0, 0.0), DestSpec::init(c_minus.as_mut(), -1.0, 0.0)];
//! gemm_fused(&cfg, 1.0, &a_sum, &b_sum, &mut dests);
//!
//! // Reference: materialize the sum, then a plain GEMM per destination.
//! let mut a12 = Matrix::zeros(m, k);
//! blas::add::add_into(a12.as_mut(), a1.as_ref(), a2.as_ref());
//! let mut want = Matrix::zeros(m, n);
//! gemm(&cfg, 1.0, Op::NoTrans, a12.as_ref(), Op::NoTrans, b.as_ref(), 0.0, want.as_mut());
//! assert!(norms::rel_diff(c_plus.as_ref(), want.as_ref()) < 1e-13);
//! let mut neg = Matrix::zeros(m, n);
//! gemm(&cfg, -1.0, Op::NoTrans, a12.as_ref(), Op::NoTrans, b.as_ref(), 0.0, neg.as_mut());
//! assert!(norms::rel_diff(c_minus.as_ref(), neg.as_ref()) < 1e-13);
//! ```

use super::blocked::{clamp_blocking, pack_a, pack_b, panel_lens};
use super::kernel::{microkernel, microkernel_x2, AccTile, MR, NR};
use super::packbuf::{with_pack_bufs, with_pack_slab};
use super::{scale_c, GemmConfig};
use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Maximum number of `γ_t · X_t` terms a [`SumOperand`] can carry — the
/// Winograd schedule needs up to four (e.g. `A12 − S2 = A12 − A21 − A22 +
/// A11`).
pub const MAX_TERMS: usize = 4;

/// Maximum number of destinations per fused multiply — a Strassen product
/// feeds at most all four `C` quadrants (`P1` in the Winograd schedule).
pub const MAX_DESTS: usize = 4;

/// A linear combination `Σ γ_t · X_t` of equally-shaped matrix views,
/// with one transpose op applied to the whole sum. The combination is
/// never materialized; [`pack_a_sum`]/[`pack_b_sum`] evaluate it
/// element-wise while packing.
#[derive(Clone, Copy)]
pub struct SumOperand<'a, T> {
    op: Op,
    terms: [(T, MatRef<'a, T>); MAX_TERMS],
    len: usize,
}

impl<'a, T: Scalar> SumOperand<'a, T> {
    /// Build a sum from `(γ_t, X_t)` terms. All views must share one
    /// shape; `op` applies to the summed result (equivalently to every
    /// term, since transposition is linear).
    ///
    /// # Panics
    /// If `terms` is empty, has more than [`MAX_TERMS`] entries, or the
    /// shapes disagree.
    pub fn new(op: Op, terms: &[(T, MatRef<'a, T>)]) -> Self {
        assert!(
            !terms.is_empty() && terms.len() <= MAX_TERMS,
            "SumOperand: need 1..={MAX_TERMS} terms, got {}",
            terms.len()
        );
        let (r, c) = (terms[0].1.nrows(), terms[0].1.ncols());
        for (_, t) in terms {
            assert!(
                t.nrows() == r && t.ncols() == c,
                "SumOperand: term shapes disagree ({r}x{c} vs {}x{})",
                t.nrows(),
                t.ncols()
            );
        }
        let mut stored = [terms[0]; MAX_TERMS];
        stored[..terms.len()].copy_from_slice(terms);
        // Padding entries alias term 0 but with γ = 0, so even an
        // accidental read past `len` contributes nothing.
        for slot in stored.iter_mut().skip(terms.len()) {
            slot.0 = T::ZERO;
        }
        Self { op, terms: stored, len: terms.len() }
    }

    /// A single-term operand `op(X)` (γ = 1) — plain GEMM semantics.
    pub fn single(op: Op, x: MatRef<'a, T>) -> Self {
        Self::new(op, &[(T::ONE, x)])
    }

    /// Dimensions of the sum *after* applying `op`.
    pub fn dims(&self) -> (usize, usize) {
        let (r, c) = (self.terms[0].1.nrows(), self.terms[0].1.ncols());
        match self.op {
            Op::NoTrans => (r, c),
            Op::Trans => (c, r),
        }
    }

    /// Element `(i, j)` of `op(Σ γ_t X_t)`.
    ///
    /// # Safety
    /// `(i, j)` must be in bounds for the op-applied shape.
    #[inline(always)]
    unsafe fn at_unchecked(&self, i: usize, j: usize) -> T {
        let (si, sj) = match self.op {
            Op::NoTrans => (i, j),
            Op::Trans => (j, i),
        };
        let (g0, x0) = &self.terms[0];
        let mut v = *g0 * *x0.get_unchecked(si, sj);
        for (g, x) in &self.terms[1..self.len] {
            v = g.mul_add(*x.get_unchecked(si, sj), v);
        }
        v
    }
}

/// One destination of a fused multiply: `c ← δ · P + β · c`, where the
/// scale `β` is optional (absent means accumulate into `c` as-is).
pub struct DestSpec<'a, T> {
    c: MatMut<'a, T>,
    delta: T,
    beta: Option<T>,
}

impl<'a, T: Scalar> DestSpec<'a, T> {
    /// First touch of a quadrant: apply BLAS β-semantics (`β = 0`
    /// overwrites without reading), then accumulate `δ · P`.
    pub fn init(c: MatMut<'a, T>, delta: T, beta: T) -> Self {
        Self { c, delta, beta: Some(beta) }
    }

    /// Subsequent touch: accumulate `δ · P` into the existing contents.
    pub fn update(c: MatMut<'a, T>, delta: T) -> Self {
        Self { c, delta, beta: None }
    }
}

/// The `L` column slices (one per term) covering rows `row0..row0+rows`
/// of stored column `j`, plus the matching γ coefficients.
#[inline(always)]
fn term_cols<'s, T: Scalar, const L: usize>(
    sum: &'s SumOperand<'_, T>,
    j: usize,
    row0: usize,
    rows: usize,
) -> ([&'s [T]; L], [T; L]) {
    let mut cols = [&[] as &[T]; L];
    let mut gammas = [T::ZERO; L];
    for t in 0..L {
        let (g, x) = &sum.terms[t];
        cols[t] = &x.col(j)[row0..row0 + rows];
        gammas[t] = *g;
    }
    (cols, gammas)
}

/// `dst[r] ← Σ_t γ_t · cols_t[r]` with the term loop unrolled at compile
/// time — the vectorizable core of the `NoTrans` packing fast path.
#[inline(always)]
fn fill_sum_rows<T: Scalar, const L: usize>(dst: &mut [T], cols: &[&[T]; L], gammas: &[T; L]) {
    debug_assert!(cols.iter().all(|c| c.len() == dst.len()));
    for (r, d) in dst.iter_mut().enumerate() {
        // SAFETY: every slice in `cols` has dst.len() elements.
        let mut v = unsafe { gammas[0] * *cols[0].get_unchecked(r) };
        for t in 1..L {
            v = unsafe { gammas[t].mul_add(*cols[t].get_unchecked(r), v) };
        }
        *d = v;
    }
}

/// `NoTrans` fast path of [`pack_a_sum`]: stored columns are contiguous,
/// so each `MR`-row segment is a straight-line `Σ γ_t · col_t` loop.
///
/// The loop order is column-outer / panel-inner so every source column is
/// read in one contiguous pass — the sources are typically quadrant views
/// with large leading dimensions, where revisiting a column once per
/// `MR`-row panel would touch the same pages over and over.
fn pack_a_sum_nt<T: Scalar, const L: usize>(
    a: &SumOperand<'_, T>,
    ic: usize,
    pc: usize,
    mb: usize,
    kb: usize,
    buf: &mut [T],
) {
    let panels = mb.div_ceil(MR);
    for kk in 0..kb {
        let (cols, gammas) = term_cols::<T, L>(a, pc + kk, ic, mb);
        for q in 0..panels {
            let row0 = q * MR;
            let rows = MR.min(mb - row0);
            let mut seg = [&[] as &[T]; L];
            for t in 0..L {
                seg[t] = &cols[t][row0..row0 + rows];
            }
            let dst = &mut buf[q * MR * kb + kk * MR..q * MR * kb + kk * MR + MR];
            fill_sum_rows(&mut dst[..rows], &seg, &gammas);
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// `NoTrans` fast path of [`pack_b_sum`]: iterate stored columns so the
/// reads are contiguous (the writes stride by `NR`).
fn pack_b_sum_nt<T: Scalar, const L: usize>(
    b: &SumOperand<'_, T>,
    pc: usize,
    jc: usize,
    kb: usize,
    nb: usize,
    buf: &mut [T],
) {
    let panels = nb.div_ceil(NR);
    for q in 0..panels {
        let col0 = q * NR;
        let cols_in_panel = NR.min(nb - col0);
        let base = q * NR * kb;
        let panel = &mut buf[base..base + NR * kb];
        for cc in 0..cols_in_panel {
            let (cols, gammas) = term_cols::<T, L>(b, jc + col0 + cc, pc, kb);
            for (kk, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                // SAFETY: every slice in `cols` has kb elements and the
                // panel holds kb NR-wide chunks.
                let mut v = unsafe { gammas[0] * *cols[0].get_unchecked(kk) };
                for t in 1..L {
                    v = unsafe { gammas[t].mul_add(*cols[t].get_unchecked(kk), v) };
                }
                chunk[cc] = v;
            }
        }
        for chunk in panel.chunks_exact_mut(NR) {
            for d in chunk.iter_mut().skip(cols_in_panel) {
                *d = T::ZERO;
            }
        }
    }
}

/// Pack the `mb x kb` block of `op(Σ γ_t A_t)` starting at `(ic, pc)`
/// into `buf`, in exactly the row-panel layout the
/// blocked kernel's private `pack_a` uses.
pub fn pack_a_sum<T: Scalar>(
    a: &SumOperand<'_, T>,
    ic: usize,
    pc: usize,
    mb: usize,
    kb: usize,
    buf: &mut [T],
) {
    let panels = mb.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kb);
    if a.op == Op::NoTrans {
        // Dispatch on the term count so the sum loop unrolls and the
        // contiguous-column inner loop vectorizes.
        match a.len {
            1 => return pack_a_sum_nt::<T, 1>(a, ic, pc, mb, kb, buf),
            2 => return pack_a_sum_nt::<T, 2>(a, ic, pc, mb, kb, buf),
            3 => return pack_a_sum_nt::<T, 3>(a, ic, pc, mb, kb, buf),
            _ => return pack_a_sum_nt::<T, 4>(a, ic, pc, mb, kb, buf),
        }
    }
    for q in 0..panels {
        let row0 = q * MR;
        let rows = MR.min(mb - row0);
        let base = q * MR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * MR..base + kk * MR + MR];
            for (r, d) in dst.iter_mut().enumerate().take(rows) {
                // SAFETY: ic+row0+r < ic+mb <= sum rows, pc+kk < sum cols.
                *d = unsafe { a.at_unchecked(ic + row0 + r, pc + kk) };
            }
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// Pack the `kb x nb` block of `op(Σ γ_t B_t)` starting at `(pc, jc)`
/// into `buf`, in exactly the column-panel layout the
/// blocked kernel's private `pack_b` uses.
pub fn pack_b_sum<T: Scalar>(
    b: &SumOperand<'_, T>,
    pc: usize,
    jc: usize,
    kb: usize,
    nb: usize,
    buf: &mut [T],
) {
    let panels = nb.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kb);
    if b.op == Op::NoTrans {
        match b.len {
            1 => return pack_b_sum_nt::<T, 1>(b, pc, jc, kb, nb, buf),
            2 => return pack_b_sum_nt::<T, 2>(b, pc, jc, kb, nb, buf),
            3 => return pack_b_sum_nt::<T, 3>(b, pc, jc, kb, nb, buf),
            _ => return pack_b_sum_nt::<T, 4>(b, pc, jc, kb, nb, buf),
        }
    }
    for q in 0..panels {
        let col0 = q * NR;
        let cols = NR.min(nb - col0);
        let base = q * NR * kb;
        for kk in 0..kb {
            let dst = &mut buf[base + kk * NR..base + kk * NR + NR];
            for (cc, d) in dst.iter_mut().enumerate().take(cols) {
                // SAFETY: pc+kk < sum rows, jc+col0+cc < sum cols.
                *d = unsafe { b.at_unchecked(pc + kk, jc + col0 + cc) };
            }
            for d in dst.iter_mut().skip(cols) {
                *d = T::ZERO;
            }
        }
    }
}

/// Macro-kernel with multi-destination write-back: each `MR x NR`
/// accumulator tile is scattered into every destination with its folded
/// coefficient while still in registers.
///
/// `first_k` marks the first `pc` block: β-semantics of `init`
/// destinations are folded into that block's write-back, so `β = 0`
/// becomes a pure streaming store (no pre-sweep, no read of `C`) and a
/// general β costs one fused read-scale-accumulate pass instead of a
/// separate scale sweep plus a read-modify-write pass.
fn scatter_tile<T: Scalar>(
    dests: &mut [DestSpec<'_, T>],
    coeffs: &[T],
    acc: &AccTile<T>,
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    first_k: bool,
) {
    for (dest, &coeff) in dests.iter_mut().zip(coeffs) {
        let beta = if first_k { dest.beta } else { None };
        let ld = dest.c.ld();
        // Hoist the destination base pointer: at leaf-sized `kb`
        // the per-column slice checks of safe indexing cost as
        // much as the micro-kernel itself.
        let base = dest.c.as_mut_ptr();
        for (cc, acc_col) in acc.iter().enumerate().take(cols) {
            // SAFETY: rows i0..i0+rows of column j0+cc are in
            // bounds by construction of the blocking, and `dests`
            // holds exclusive borrows of disjoint matrices.
            let cseg = unsafe { core::slice::from_raw_parts_mut(base.add((j0 + cc) * ld + i0), rows) };
            match beta {
                Some(b) if b == T::ZERO => {
                    for (d, &v) in cseg.iter_mut().zip(acc_col) {
                        *d = coeff * v;
                    }
                }
                Some(b) => {
                    for (d, &v) in cseg.iter_mut().zip(acc_col) {
                        *d = b * *d + coeff * v;
                    }
                }
                None => {
                    for (d, &v) in cseg.iter_mut().zip(acc_col) {
                        *d += coeff * v;
                    }
                }
            }
        }
    }
}

fn macrokernel_multi<T: Scalar>(
    mb: usize,
    kb: usize,
    nb: usize,
    packed_a: &[T],
    packed_b: &[T],
    dests: &mut [DestSpec<'_, T>],
    coeffs: &[T],
    ic: usize,
    jc: usize,
    first_k: bool,
) {
    let mpanels = mb.div_ceil(MR);
    let npanels = nb.div_ceil(NR);
    for qn in 0..npanels {
        let col0 = qn * NR;
        let cols = NR.min(nb - col0);
        let pb = &packed_b[qn * NR * kb..(qn + 1) * NR * kb];
        // A-row panels in pairs, so AVX-512 parts run the fused
        // 2·MR x NR micro-kernel (see `super::kernel::microkernel_x2`).
        let mut qm = 0;
        while qm + 2 <= mpanels {
            let pa0 = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let pa1 = &packed_a[(qm + 1) * MR * kb..(qm + 2) * MR * kb];
            let mut acc0: AccTile<T> = [[T::ZERO; MR]; NR];
            let mut acc1: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel_x2(kb, pa0, pa1, pb, &mut acc0, &mut acc1);
            let rows0 = MR.min(mb - qm * MR);
            let rows1 = MR.min(mb - (qm + 1) * MR);
            scatter_tile(dests, coeffs, &acc0, ic + qm * MR, jc + col0, rows0, cols, first_k);
            scatter_tile(dests, coeffs, &acc1, ic + (qm + 1) * MR, jc + col0, rows1, cols, first_k);
            qm += 2;
        }
        if qm < mpanels {
            let pa = &packed_a[qm * MR * kb..(qm + 1) * MR * kb];
            let mut acc: AccTile<T> = [[T::ZERO; MR]; NR];
            microkernel(kb, pa, pb, &mut acc);
            let rows = MR.min(mb - qm * MR);
            scatter_tile(dests, coeffs, &acc, ic + qm * MR, jc + col0, rows, cols, first_k);
        }
    }
}

/// Fused multiply: `C_d ← α δ_d (Σ γ_t op(A_t))(Σ γ_t op(B_t)) + β_d C_d`
/// for every destination `d`, with the operand sums evaluated during
/// packing and the destination updates performed at tile write-back.
///
/// # Panics
/// On dimension mismatch between the operand sums and any destination,
/// or if `dests` is empty or longer than [`MAX_DESTS`].
pub fn gemm_fused<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    a: &SumOperand<'_, T>,
    b: &SumOperand<'_, T>,
    dests: &mut [DestSpec<'_, T>],
) {
    assert!(
        !dests.is_empty() && dests.len() <= MAX_DESTS,
        "gemm_fused: need 1..={MAX_DESTS} destinations, got {}",
        dests.len()
    );
    let (m, ka) = a.dims();
    let (kb_dim, n) = b.dims();
    assert_eq!(ka, kb_dim, "gemm_fused: inner dimensions disagree ({ka} vs {kb_dim})");
    for dest in dests.iter() {
        assert!(
            dest.c.nrows() == m && dest.c.ncols() == n,
            "gemm_fused: destination is {}x{}, expected {m}x{n}",
            dest.c.nrows(),
            dest.c.ncols()
        );
    }
    let k = ka;
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        // Degenerate product: only the β-semantics of `init`
        // destinations remain to be applied.
        for dest in dests.iter_mut() {
            if let Some(beta) = dest.beta {
                scale_c(beta, &mut dest.c);
            }
        }
        return;
    }
    let mut coeffs = [T::ZERO; MAX_DESTS];
    for (slot, dest) in coeffs.iter_mut().zip(dests.iter()) {
        *slot = alpha * dest.delta;
    }

    let (mc, kc, nc) = clamp_blocking(cfg, m, k, n);
    let (a_len, b_len) = panel_lens(mc, kc, nc);
    with_pack_bufs::<T, _>(a_len, b_len, |packed_a, packed_b| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b_sum(b, pc, jc, kb, nb, packed_b);
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a_sum(a, ic, pc, mb, kb, packed_a);
                    macrokernel_multi(
                        mb,
                        kb,
                        nb,
                        packed_a,
                        packed_b,
                        dests,
                        &coeffs[..dests.len()],
                        ic,
                        jc,
                        pc == 0,
                    );
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Whole-level fused executor: every sub-product of one Strassen
// recursion level through a single 5-loop nest with shared packed
// panels.

/// Largest supported block grid (`g ≤ 4`, i.e. up to two flattened
/// Strassen levels — 4 x 4 quarter-blocks).
pub const MAX_GRID: usize = 4;
const MAX_GRID_BLOCKS: usize = MAX_GRID * MAX_GRID;

/// Up to [`MAX_TERMS`] signed block references `(γ, q)` over a `g x g`
/// partition, `q = block_row · g + block_col` flattened. Coefficients are
/// small integers (`±1` in every Strassen-family schedule).
#[derive(Clone, Copy, Debug)]
pub struct BlockTerms {
    /// `(γ, flat block index)` entries; slots at `len..` are ignored.
    pub t: [(i8, u8); MAX_TERMS],
    /// Number of live entries (`1..=MAX_TERMS`).
    pub len: u8,
}

impl BlockTerms {
    /// A single-term reference `γ · X_q`.
    pub const fn single(gamma: i8, q: u8) -> Self {
        BlockTerms { t: [(gamma, q), (0, 0), (0, 0), (0, 0)], len: 1 }
    }

    /// Build from a slice of `(γ, q)` terms.
    ///
    /// # Panics
    /// If `terms` is empty or longer than [`MAX_TERMS`].
    pub fn new(terms: &[(i8, u8)]) -> Self {
        assert!(
            !terms.is_empty() && terms.len() <= MAX_TERMS,
            "BlockTerms: need 1..={MAX_TERMS} terms, got {}",
            terms.len()
        );
        let mut t = [(0i8, 0u8); MAX_TERMS];
        t[..terms.len()].copy_from_slice(terms);
        BlockTerms { t, len: terms.len() as u8 }
    }

    /// Live `(γ, q)` entries.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (i8, u8)> + '_ {
        self.t[..self.len as usize].iter().copied()
    }
}

/// One fused sub-product `(Σ γ A_q)(Σ γ B_q) → Σ δ C_q` of a block
/// schedule, all operands addressed over the same `g x g` partition.
#[derive(Clone, Copy, Debug)]
pub struct BlockProduct {
    /// A-operand terms.
    pub a: BlockTerms,
    /// B-operand terms.
    pub b: BlockTerms,
    /// Destination blocks with their δ coefficients.
    pub c: BlockTerms,
}

/// Pack-slab requirement (elements of `T`) of one [`gemm_fused_level`]
/// call at shape `m x k x n` over a `g x g` grid: one slot per grid block
/// of A and of B plus one combination buffer each, all at the
/// problem-clamped panel sizes. Exposed for the Table-1 memory
/// accounting tests.
pub fn fused_level_pack_elements(cfg: &GemmConfig, m: usize, k: usize, n: usize, g: usize) -> usize {
    let (bm, bk, bn) = (m / g, k / g, n / g);
    let (mc, kc, nc) = clamp_blocking(cfg, bm, bk, bn);
    let (a_len, b_len) = panel_lens(mc, kc, nc);
    (g * g + 1) * (a_len + b_len)
}

/// `dst ← Σ_t γ_t · slots[q_t]`, reusing the unrolled AXPY core of the
/// packing fast paths. Packed layouts are position-identical across
/// slots (same `(mb, kb)` or `(kb, nb)`), and packing is linear in its
/// source — `pack(Σ γ X) = Σ γ pack(X)`, zero padding included — so
/// combining after packing equals packing the combination.
fn combine_packed<T: Scalar>(dst: &mut [T], terms: &BlockTerms, slots: &[T], slot_len: usize) {
    let lt = terms.len as usize;
    let mut srcs = [&[] as &[T]; MAX_TERMS];
    let mut gammas = [T::ZERO; MAX_TERMS];
    for t in 0..lt {
        let (gm, q) = terms.t[t];
        let base = q as usize * slot_len;
        srcs[t] = &slots[base..base + dst.len()];
        gammas[t] = T::from_f64(gm as f64);
    }
    match lt {
        1 => fill_sum_rows(dst, &[srcs[0]], &[gammas[0]]),
        2 => fill_sum_rows(dst, &[srcs[0], srcs[1]], &[gammas[0], gammas[1]]),
        3 => fill_sum_rows(dst, &[srcs[0], srcs[1], srcs[2]], &[gammas[0], gammas[1], gammas[2]]),
        _ => fill_sum_rows(dst, &srcs, &gammas),
    }
}

/// Execute a whole fused block schedule — e.g. one Strassen recursion
/// level — through a single 5-loop nest with **shared packed panels**:
///
/// ```text
/// for jc (nc-wide slices of every C/B block column range)
///   for pc (kc-deep rank slices)            B-block panels packed once,
///     for ic (mc-tall slices)               A-block panels packed once,
///       for each product: combine γ-weighted packed panels, multiply,
///                         scatter into its δ-weighted C blocks
/// ```
///
/// Compared to one [`gemm_fused`] call per product (which re-packs its
/// operand sums from scratch), every grid block of `A` and `B` is packed
/// **once per cache block** and reused by all products that reference
/// it — for Strassen's 7-product schedule that cuts B-packing traffic
/// from 12 quadrant passes to 4 and A-packing from 12 to 4, and operand
/// sums become cheap linear combinations of already-packed panels.
///
/// Semantics, for each product `p` in order:
/// `C_q ← α δ_q (Σ γ A_blk)(Σ γ B_blk) + [β C_q]` where `β` applies on
/// the first product that touches block `q` (BLAS semantics: `β = 0`
/// overwrites without reading). Blocks no product touches are scaled by
/// `β` directly.
///
/// All of `m`, `k`, `n` must be divisible by `g`.
///
/// # Panics
/// On dimension mismatch, `g` out of `1..=`[`MAX_GRID`], indices outside
/// the grid, malformed term counts, or a product listing the same
/// destination block twice.
pub fn gemm_fused_level<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    products: &[BlockProduct],
    g: usize,
) {
    assert!((1..=MAX_GRID).contains(&g), "gemm_fused_level: grid {g} outside 1..={MAX_GRID}");
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();
    assert_eq!(b.nrows(), k, "gemm_fused_level: inner dimensions disagree");
    assert!(
        c.nrows() == m && c.ncols() == n,
        "gemm_fused_level: destination is {}x{}, expected {m}x{n}",
        c.nrows(),
        c.ncols()
    );
    assert!(
        m % g == 0 && k % g == 0 && n % g == 0,
        "gemm_fused_level: {m}x{k}x{n} not divisible by grid {g}"
    );
    let g2 = g * g;
    for p in products {
        for terms in [&p.a, &p.b, &p.c] {
            let lt = terms.len as usize;
            assert!((1..=MAX_TERMS).contains(&lt), "gemm_fused_level: term count {lt}");
            assert!(terms.iter().all(|(_, q)| (q as usize) < g2), "block index outside grid");
        }
        let lc = p.c.len as usize;
        assert!(lc <= MAX_DESTS, "gemm_fused_level: {lc} destinations");
        for i in 0..lc {
            for j in i + 1..lc {
                assert_ne!(p.c.t[i].1, p.c.t[j].1, "product lists destination block twice");
            }
        }
    }
    let (bm, bk, bn) = (m / g, k / g, n / g);

    // First product touching each C block — that touch carries β.
    let mut first_touch = [usize::MAX; MAX_GRID_BLOCKS];
    for (pi, p) in products.iter().enumerate() {
        for (_, q) in p.c.iter() {
            if first_touch[q as usize] == usize::MAX {
                first_touch[q as usize] = pi;
            }
        }
    }

    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 || products.is_empty() {
        scale_c(beta, &mut c);
        return;
    }
    // Blocks outside the schedule still owe their β scaling.
    for (q, &first) in first_touch.iter().enumerate().take(g2) {
        if first == usize::MAX {
            scale_c(beta, &mut c.submatrix_mut((q / g) * bm, (q % g) * bn, bm, bn));
        }
    }

    let (mc, kc, nc) = clamp_blocking(cfg, bm, bk, bn);
    let (a_len, b_len) = panel_lens(mc, kc, nc);
    let ld = c.ld();
    let cbase = c.as_mut_ptr();

    with_pack_slab::<T, _>((g2 + 1) * (a_len + b_len), |slab| {
        // Slab layout: one pack slot per grid block plus one combination
        // buffer, for A then B.
        let (a_region, b_region) = slab.split_at_mut((g2 + 1) * a_len);
        let (a_slots, comb_a) = a_region.split_at_mut(g2 * a_len);
        let (b_slots, comb_b) = b_region.split_at_mut(g2 * b_len);

        for jc in (0..bn).step_by(nc) {
            let nb = nc.min(bn - jc);
            for pc in (0..bk).step_by(kc) {
                let kb = kc.min(bk - pc);
                // Which block slots hold current data for this cache block.
                let mut b_valid = [false; MAX_GRID_BLOCKS];
                let b_used = nb.div_ceil(NR) * NR * kb;
                for ic in (0..bm).step_by(mc) {
                    let mb = mc.min(bm - ic);
                    let mut a_valid = [false; MAX_GRID_BLOCKS];
                    let a_used = mb.div_ceil(MR) * MR * kb;
                    for (pi, p) in products.iter().enumerate() {
                        // Lazily pack the grid blocks this product needs;
                        // later products reuse them.
                        for (_, q) in p.a.iter() {
                            let q = q as usize;
                            if !a_valid[q] {
                                let blk = a.submatrix((q / g) * bm, (q % g) * bk, bm, bk);
                                let slot = &mut a_slots[q * a_len..q * a_len + a_used];
                                pack_a(Op::NoTrans, &blk, ic, pc, mb, kb, slot);
                                a_valid[q] = true;
                            }
                        }
                        for (_, q) in p.b.iter() {
                            let q = q as usize;
                            if !b_valid[q] {
                                let blk = b.submatrix((q / g) * bk, (q % g) * bn, bk, bn);
                                let slot = &mut b_slots[q * b_len..q * b_len + b_used];
                                pack_b(Op::NoTrans, &blk, pc, jc, kb, nb, slot);
                                b_valid[q] = true;
                            }
                        }
                        // Operand sums as combinations of packed panels; a
                        // bare `+X_q` term borrows the slot directly.
                        let pa: &[T] = if p.a.len == 1 && p.a.t[0].0 == 1 {
                            let q = p.a.t[0].1 as usize;
                            &a_slots[q * a_len..q * a_len + a_used]
                        } else {
                            combine_packed(&mut comb_a[..a_used], &p.a, a_slots, a_len);
                            &comb_a[..a_used]
                        };
                        let pb: &[T] = if p.b.len == 1 && p.b.t[0].0 == 1 {
                            let q = p.b.t[0].1 as usize;
                            &b_slots[q * b_len..q * b_len + b_used]
                        } else {
                            combine_packed(&mut comb_b[..b_used], &p.b, b_slots, b_len);
                            &comb_b[..b_used]
                        };

                        let mut coeffs = [T::ZERO; MAX_DESTS];
                        for (slot, (dl, _)) in coeffs.iter_mut().zip(p.c.iter()) {
                            *slot = alpha * T::from_f64(dl as f64);
                        }
                        let mk = |t: usize| {
                            let (dl, q) = p.c.t[t];
                            let q = q as usize;
                            // SAFETY: grid blocks are disjoint, a product
                            // never lists the same block twice (checked
                            // above), and the parent view `c` is dormant
                            // while the block views are live.
                            let view = unsafe {
                                MatMut::from_raw_parts(
                                    cbase.add((q / g) * bm + (q % g) * bn * ld),
                                    bm,
                                    bn,
                                    ld,
                                )
                            };
                            let delta = T::from_f64(dl as f64);
                            if pc == 0 && first_touch[q] == pi {
                                DestSpec::init(view, delta, beta)
                            } else {
                                DestSpec::update(view, delta)
                            }
                        };
                        let lc = p.c.len as usize;
                        let run = |dests: &mut [DestSpec<'_, T>]| {
                            macrokernel_multi(mb, kb, nb, pa, pb, dests, &coeffs[..lc], ic, jc, true);
                        };
                        match lc {
                            1 => run(&mut [mk(0)]),
                            2 => run(&mut [mk(0), mk(1)]),
                            3 => run(&mut [mk(0), mk(1), mk(2)]),
                            _ => run(&mut [mk(0), mk(1), mk(2), mk(3)]),
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    fn materialize(sum: &SumOperand<'_, f64>) -> Matrix<f64> {
        let (r, c) = (sum.terms[0].1.nrows(), sum.terms[0].1.ncols());
        Matrix::from_fn(r, c, |i, j| sum.terms[..sum.len].iter().map(|(g, x)| g * x.at(i, j)).sum())
    }

    #[test]
    fn pack_a_sum_matches_pack_a_on_materialized_sum() {
        let x0 = random::uniform::<f64>(11, 9, 1);
        let x1 = random::uniform::<f64>(11, 9, 2);
        let sum = SumOperand::new(Op::NoTrans, &[(1.0, x0.as_ref()), (-1.0, x1.as_ref())]);
        let mat = materialize(&sum);
        let (mb, kb) = (7usize, 5usize);
        let len = mb.div_ceil(MR) * MR * kb;
        let mut got = vec![f64::NAN; len];
        let mut expect = vec![f64::NAN; len];
        pack_a_sum(&sum, 2, 3, mb, kb, &mut got);
        pack_a(Op::NoTrans, &mat.as_ref(), 2, 3, mb, kb, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn pack_b_sum_matches_pack_b_with_transpose() {
        // op(Σ) = (X0 + 2·X1)ᵀ where the stored views are 9x12.
        let x0 = random::uniform::<f64>(9, 12, 3);
        let x1 = random::uniform::<f64>(9, 12, 4);
        let sum = SumOperand::new(Op::Trans, &[(1.0, x0.as_ref()), (2.0, x1.as_ref())]);
        let mat = materialize(&sum); // 9x12; pack with Op::Trans sees 12x9
        let (kb, nb) = (10usize, 8usize);
        let len = nb.div_ceil(NR) * NR * kb;
        let mut got = vec![f64::NAN; len];
        let mut expect = vec![f64::NAN; len];
        pack_b_sum(&sum, 1, 0, kb, nb, &mut got);
        pack_b(Op::Trans, &mat.as_ref(), 1, 0, kb, nb, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn four_term_sum_and_padding_coeffs_are_inert() {
        let xs: Vec<Matrix<f64>> = (0..4).map(|s| random::uniform::<f64>(6, 6, s as u64)).collect();
        let terms: Vec<(f64, matrix::MatRef<'_, f64>)> =
            xs.iter().zip([1.0, -1.0, -1.0, 1.0]).map(|(x, g)| (g, x.as_ref())).collect();
        let sum = SumOperand::new(Op::NoTrans, &terms);
        let mat = materialize(&sum);
        let mut got = vec![0.0; MR * 6];
        let mut expect = vec![0.0; MR * 6];
        pack_a_sum(&sum, 0, 0, 6, 6, &mut got);
        pack_a(Op::NoTrans, &mat.as_ref(), 0, 0, 6, 6, &mut expect);
        assert_eq!(got, expect);

        // A one-term operand must ignore the padding slots entirely.
        let single = SumOperand::single(Op::NoTrans, xs[0].as_ref());
        let mut got1 = vec![0.0; MR * 6];
        pack_a_sum(&single, 0, 0, 6, 6, &mut got1);
        let mut expect1 = vec![0.0; MR * 6];
        pack_a(Op::NoTrans, &xs[0].as_ref(), 0, 0, 6, 6, &mut expect1);
        assert_eq!(got1, expect1);
    }

    #[test]
    fn fused_multi_dest_matches_separate_gemm_plus_add() {
        // Odd/rectangular shapes so tile edges are exercised.
        let cfg = GemmConfig { mc: 16, kc: 12, nc: 20, ..GemmConfig::blocked() };
        let (m, k, n) = (13, 9, 17);
        let a0 = random::uniform::<f64>(m, k, 10);
        let a1 = random::uniform::<f64>(m, k, 11);
        let b0 = random::uniform::<f64>(k, n, 12);
        let c0_init = random::uniform::<f64>(m, n, 13);
        let c1_init = random::uniform::<f64>(m, n, 14);

        let alpha = 0.7;
        let a_sum = SumOperand::new(Op::NoTrans, &[(1.0, a0.as_ref()), (-1.0, a1.as_ref())]);
        let b_sum = SumOperand::single(Op::NoTrans, b0.as_ref());

        let mut c0 = c0_init.clone();
        let mut c1 = c1_init.clone();
        {
            let mut dests = [DestSpec::init(c0.as_mut(), 1.0, -0.5), DestSpec::update(c1.as_mut(), -1.0)];
            gemm_fused(&cfg, alpha, &a_sum, &b_sum, &mut dests);
        }

        // Reference: materialize A0 - A1, separate GEMMs per destination.
        let diff = materialize(&a_sum);
        let mut e0 = c0_init.clone();
        let mut e1 = c1_init.clone();
        super::super::gemm_blocked(
            &cfg,
            alpha,
            Op::NoTrans,
            diff.as_ref(),
            Op::NoTrans,
            b0.as_ref(),
            -0.5,
            e0.as_mut(),
        );
        super::super::gemm_blocked(
            &cfg,
            -alpha,
            Op::NoTrans,
            diff.as_ref(),
            Op::NoTrans,
            b0.as_ref(),
            1.0,
            e1.as_mut(),
        );
        matrix::norms::assert_allclose(c0.as_ref(), e0.as_ref(), 1e-12, "dest 0");
        matrix::norms::assert_allclose(c1.as_ref(), e1.as_ref(), 1e-12, "dest 1");
    }

    #[test]
    fn beta_zero_first_touch_clears_nan() {
        let cfg = GemmConfig::blocked();
        let a = Matrix::from_row_major(1, 1, &[2.0]);
        let b = Matrix::from_row_major(1, 1, &[3.0]);
        let mut c = Matrix::from_row_major(1, 1, &[f64::NAN]);
        let a_sum = SumOperand::single(Op::NoTrans, a.as_ref());
        let b_sum = SumOperand::single(Op::NoTrans, b.as_ref());
        let mut dests = [DestSpec::init(c.as_mut(), 1.0, 0.0)];
        gemm_fused(&cfg, 1.0, &a_sum, &b_sum, &mut dests);
        assert_eq!(c.at(0, 0), 6.0);
    }

    #[test]
    #[should_panic(expected = "term shapes disagree")]
    fn mismatched_term_shapes_panic() {
        let x0 = Matrix::<f64>::zeros(3, 3);
        let x1 = Matrix::<f64>::zeros(3, 4);
        let _ = SumOperand::new(Op::NoTrans, &[(1.0, x0.as_ref()), (1.0, x1.as_ref())]);
    }

    /// Strassen's 1969 seven-product table over flat 2x2 block indices
    /// (q = row·2 + col).
    fn strassen_table() -> [BlockProduct; 7] {
        let t = BlockTerms::new;
        [
            BlockProduct { a: t(&[(1, 0), (1, 3)]), b: t(&[(1, 0), (1, 3)]), c: t(&[(1, 0), (1, 3)]) },
            BlockProduct { a: t(&[(1, 2), (1, 3)]), b: t(&[(1, 0)]), c: t(&[(1, 2), (-1, 3)]) },
            BlockProduct { a: t(&[(1, 0)]), b: t(&[(1, 1), (-1, 3)]), c: t(&[(1, 1), (1, 3)]) },
            BlockProduct { a: t(&[(1, 3)]), b: t(&[(1, 2), (-1, 0)]), c: t(&[(1, 0), (1, 2)]) },
            BlockProduct { a: t(&[(1, 0), (1, 1)]), b: t(&[(1, 3)]), c: t(&[(-1, 0), (1, 1)]) },
            BlockProduct { a: t(&[(1, 2), (-1, 0)]), b: t(&[(1, 0), (1, 1)]), c: t(&[(1, 3)]) },
            BlockProduct { a: t(&[(1, 1), (-1, 3)]), b: t(&[(1, 2), (1, 3)]), c: t(&[(1, 0)]) },
        ]
    }

    #[test]
    fn fused_level_runs_one_strassen_level() {
        // Odd-ish blocking so every tail path is exercised, β grid.
        let cfg = GemmConfig { mc: 16, kc: 12, nc: 20, ..GemmConfig::blocked() };
        let table = strassen_table();
        for &(m, k, n) in &[(8usize, 8usize, 8usize), (26, 18, 34), (64, 32, 48)] {
            for beta in [0.0, 1.0, -0.7] {
                let a = random::uniform::<f64>(m, k, 31);
                let b = random::uniform::<f64>(k, n, 32);
                let c0 = random::uniform::<f64>(m, n, 33);
                let mut got = c0.clone();
                gemm_fused_level(&cfg, 1.1, a.as_ref(), b.as_ref(), beta, got.as_mut(), &table, 2);
                let mut want = c0.clone();
                super::super::gemm_naive(
                    1.1,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    beta,
                    want.as_mut(),
                );
                let diff = matrix::norms::rel_diff(got.as_ref(), want.as_ref());
                assert!(diff < 1e-12, "{m}x{k}x{n} β={beta}: rel diff {diff:.3e}");
            }
        }
    }

    #[test]
    fn fused_level_grid_one_is_plain_gemm() {
        let cfg = GemmConfig::blocked();
        let (m, k, n) = (20, 12, 16);
        let a = random::uniform::<f64>(m, k, 41);
        let b = random::uniform::<f64>(k, n, 42);
        let c0 = random::uniform::<f64>(m, n, 43);
        let mut got = c0.clone();
        let table = [BlockProduct {
            a: BlockTerms::single(1, 0),
            b: BlockTerms::single(1, 0),
            c: BlockTerms::single(1, 0),
        }];
        gemm_fused_level(&cfg, 0.8, a.as_ref(), b.as_ref(), 0.3, got.as_mut(), &table, 1);
        let mut want = c0.clone();
        super::super::gemm_blocked(
            &cfg,
            0.8,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            0.3,
            want.as_mut(),
        );
        matrix::norms::assert_allclose(got.as_ref(), want.as_ref(), 1e-13, "grid 1");
    }

    #[test]
    fn fused_level_scales_untouched_blocks_by_beta() {
        // A one-product schedule touching only C block 0: the other three
        // blocks must still see β.
        let cfg = GemmConfig::blocked();
        let a = random::uniform::<f64>(8, 8, 51);
        let b = random::uniform::<f64>(8, 8, 52);
        let mut c = Matrix::from_fn(8, 8, |_, _| 2.0);
        let table = [BlockProduct {
            a: BlockTerms::single(1, 0),
            b: BlockTerms::single(1, 0),
            c: BlockTerms::single(1, 0),
        }];
        gemm_fused_level(&cfg, 1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut(), &table, 2);
        // Block (1,1) untouched by the product: pure β scaling.
        assert_eq!(c.at(7, 7), 1.0);
        assert_eq!(c.at(0, 7), 1.0);
        assert_eq!(c.at(7, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "destination block twice")]
    fn duplicate_destination_blocks_panic() {
        let cfg = GemmConfig::blocked();
        let a = Matrix::<f64>::zeros(4, 4);
        let b = Matrix::<f64>::zeros(4, 4);
        let mut c = Matrix::<f64>::zeros(4, 4);
        let table = [BlockProduct {
            a: BlockTerms::single(1, 0),
            b: BlockTerms::single(1, 0),
            c: BlockTerms::new(&[(1, 0), (-1, 0)]),
        }];
        gemm_fused_level(&cfg, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), &table, 2);
    }

    #[test]
    fn fused_level_matches_per_product_fused_calls() {
        // The shared-panel executor must agree with running each product
        // as its own gemm_fused call (the pre-level formulation) — the
        // combination of packed panels is numerically the packing of the
        // combination because both use the same γ-ordered mul_add chain.
        let cfg = GemmConfig { mc: 16, kc: 12, nc: 20, ..GemmConfig::blocked() };
        let table = strassen_table();
        let (m, k, n) = (26, 18, 34);
        let (bm, bk, bn) = (m / 2, k / 2, n / 2);
        let a = random::uniform::<f64>(m, k, 61);
        let b = random::uniform::<f64>(k, n, 62);
        let c0 = random::uniform::<f64>(m, n, 63);
        let beta = -0.3;

        let mut got = c0.clone();
        gemm_fused_level(&cfg, 1.1, a.as_ref(), b.as_ref(), beta, got.as_mut(), &table, 2);

        let mut want = c0.clone();
        let mut seen = [false; 4];
        fn terms<'s>(
            bt: &BlockTerms,
            src: matrix::MatRef<'s, f64>,
            rdim: usize,
            cdim: usize,
        ) -> Vec<(f64, matrix::MatRef<'s, f64>)> {
            bt.iter()
                .map(|(gm, q)| {
                    let (r, cc) = (q as usize / 2, q as usize % 2);
                    (gm as f64, src.submatrix(r * rdim, cc * cdim, rdim, cdim))
                })
                .collect()
        }
        for p in &table {
            let sa = SumOperand::new(Op::NoTrans, &terms(&p.a, a.as_ref(), bm, bk));
            let sb = SumOperand::new(Op::NoTrans, &terms(&p.b, b.as_ref(), bk, bn));
            let ld = want.as_mut().ld();
            let base = want.as_mut().as_mut_ptr();
            let mut mk = |t: usize| {
                let (dl, q) = p.c.t[t];
                let q = q as usize;
                let view = unsafe {
                    matrix::MatMut::from_raw_parts(base.add((q / 2) * bm + (q % 2) * bn * ld), bm, bn, ld)
                };
                let first = !seen[q];
                seen[q] = true;
                if first {
                    DestSpec::init(view, dl as f64, beta)
                } else {
                    DestSpec::update(view, dl as f64)
                }
            };
            match p.c.len {
                1 => gemm_fused(&cfg, 1.1, &sa, &sb, &mut [mk(0)]),
                _ => gemm_fused(&cfg, 1.1, &sa, &sb, &mut [mk(0), mk(1)]),
            }
        }
        let diff = matrix::norms::rel_diff(got.as_ref(), want.as_ref());
        assert!(diff < 1e-13, "rel diff {diff:.3e}");
    }
}
