//! Thread-local scratch for the packed GEMM panels.
//!
//! Every blocked kernel invocation needs two packed panels (`mc x kc` of
//! `A`, `kc x nc` of `B`). Allocating them per call puts a `vec!` on the
//! Strassen hot path — seven leaf GEMMs per recursion level. This module
//! keeps one grow-only buffer per thread and lends slices out of it, so
//! after warm-up a conventional multiply performs no heap allocation.
//!
//! The buffer is stored as `u64` words and reinterpreted as `T`: any bit
//! pattern is a valid `f32`/`f64`, `align_of::<u64>() == 8` covers both,
//! and the packing routines overwrite every element they later read, so
//! handing out stale contents is sound.

use matrix::Scalar;
use std::cell::Cell;

thread_local! {
    static PACK_BUF: Cell<Vec<u64>> = const { Cell::new(Vec::new()) };
}

fn words_for<T>(len: usize) -> usize {
    (len * std::mem::size_of::<T>()).div_ceil(std::mem::size_of::<u64>())
}

/// Run `f` with two scratch slices of `a_len` and `b_len` elements carved
/// from this thread's reusable pack buffer. Contents are unspecified on
/// entry. Reentrant calls (e.g. a test harness multiplying inside a
/// callback) simply allocate a fresh buffer for the inner call.
pub(crate) fn with_pack_bufs<T: Scalar, R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    const {
        assert!(std::mem::size_of::<T>() <= std::mem::size_of::<u64>());
        assert!(std::mem::align_of::<T>() <= std::mem::align_of::<u64>());
    }
    let mut words = PACK_BUF.with(Cell::take);
    let need = words_for::<T>(a_len) + words_for::<T>(b_len);
    if words.len() < need {
        words.resize(need, 0);
    }
    // SAFETY: the buffer holds at least `need` u64 words; T's size and
    // align fit in a u64 word (checked above) and T accepts any bit
    // pattern (Scalar is implemented for f32/f64 only).
    let (wa, wb) = words.split_at_mut(words_for::<T>(a_len));
    let pa = unsafe { std::slice::from_raw_parts_mut(wa.as_mut_ptr().cast::<T>(), a_len) };
    let pb = unsafe { std::slice::from_raw_parts_mut(wb.as_mut_ptr().cast::<T>(), b_len) };
    let out = f(pa, pb);
    PACK_BUF.with(|slot| slot.set(words));
    out
}

/// Capacity (in `u64` words) of this thread's pack buffer — test hook for
/// the no-allocation-after-warm-up guarantee.
pub fn pack_buf_capacity_words() -> usize {
    let words = PACK_BUF.with(Cell::take);
    let cap = words.capacity();
    PACK_BUF.with(|slot| slot.set(words));
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_have_requested_lengths_and_are_writable() {
        with_pack_bufs::<f64, _>(10, 7, |a, b| {
            assert_eq!(a.len(), 10);
            assert_eq!(b.len(), 7);
            a.fill(1.5);
            b.fill(-2.5);
            assert!(a.iter().all(|&x| x == 1.5));
            assert!(b.iter().all(|&x| x == -2.5));
        });
    }

    #[test]
    fn buffer_is_reused_not_regrown() {
        with_pack_bufs::<f64, _>(1024, 1024, |_, _| {});
        let cap = pack_buf_capacity_words();
        for _ in 0..8 {
            with_pack_bufs::<f64, _>(512, 900, |a, b| {
                a[0] = 1.0;
                b[0] = 2.0;
            });
        }
        assert_eq!(pack_buf_capacity_words(), cap);
    }

    #[test]
    fn reentrant_use_is_sound() {
        with_pack_bufs::<f64, _>(16, 16, |a, _| {
            a.fill(3.0);
            with_pack_bufs::<f32, _>(8, 8, |ia, ib| {
                ia.fill(1.0);
                ib.fill(2.0);
            });
            assert!(a.iter().all(|&x| x == 3.0));
        });
    }
}
