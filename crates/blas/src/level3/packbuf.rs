//! Thread-local scratch for the packed GEMM panels.
//!
//! Every blocked kernel invocation needs packed panels (`mc x kc` of
//! `A`, `kc x nc` of `B`; the fused level executor leases a whole slab of
//! quadrant panels). Allocating them per call puts a `vec!` on the
//! Strassen hot path — seven leaf GEMMs per recursion level. This module
//! keeps one grow-only buffer per thread and lends slices out of it, so
//! after warm-up a conventional multiply performs no heap allocation.
//!
//! The buffer is stored as `u64` words and reinterpreted as `T`: any bit
//! pattern is a valid `f32`/`f64`, `align_of::<u64>() == 8` covers both,
//! and the packing routines overwrite every element they later read, so
//! handing out stale contents is sound.
//!
//! Leased slices start on a **64-byte boundary** ([`PACK_ALIGN`]): the
//! packed-`A` row panels advance in `MR`-element steps (64 bytes for
//! `f64`), so an aligned base keeps every vector load of the AVX-512 and
//! AVX2 micro-kernels within one cache line. The buffer over-allocates by
//! at most [`PACK_ALIGN`] bytes of slack to reach the boundary, and grows
//! with `reserve_exact` so its capacity equals the high-water requirement
//! (the Table-1 accounting tests rely on that exactness).

use matrix::Scalar;
use std::cell::Cell;

thread_local! {
    static PACK_BUF: Cell<Vec<u64>> = const { Cell::new(Vec::new()) };
}

/// Alignment (bytes) of every leased pack slice.
pub(crate) const PACK_ALIGN: usize = 64;
const ALIGN_WORDS: usize = PACK_ALIGN / std::mem::size_of::<u64>();

/// `u64` words needed to store `len` elements of `T`.
pub(crate) fn words_for<T>(len: usize) -> usize {
    (len * std::mem::size_of::<T>()).div_ceil(std::mem::size_of::<u64>())
}

/// Run `f` over an aligned word region of length `need` carved from this
/// thread's reusable buffer.
fn with_words<R>(need: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    let mut words = PACK_BUF.with(Cell::take);
    let total = need + ALIGN_WORDS;
    if words.len() < total {
        if words.capacity() < total {
            // Exact growth: capacity == high-water requirement, so the
            // accounting tests can bound it analytically.
            words.reserve_exact(total - words.len());
        }
        words.resize(total, 0);
    }
    let off = words.as_ptr().align_offset(PACK_ALIGN);
    debug_assert!(off < ALIGN_WORDS, "u64 heap buffer must reach 64B alignment within 7 words");
    let out = f(&mut words[off..off + need]);
    PACK_BUF.with(|slot| slot.set(words));
    out
}

/// Run `f` with two scratch slices of `a_len` and `b_len` elements carved
/// from this thread's reusable pack buffer; the `A` slice starts 64-byte
/// aligned. Contents are unspecified on entry. Reentrant calls (e.g. a
/// test harness multiplying inside a callback) simply allocate a fresh
/// buffer for the inner call.
pub(crate) fn with_pack_bufs<T: Scalar, R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    const {
        assert!(std::mem::size_of::<T>() <= std::mem::size_of::<u64>());
        assert!(std::mem::align_of::<T>() <= std::mem::align_of::<u64>());
    }
    let wa = words_for::<T>(a_len);
    with_words(wa + words_for::<T>(b_len), |words| {
        // SAFETY: the region holds enough words for both slices; T's size
        // and align fit in a u64 word (checked above) and T accepts any
        // bit pattern (Scalar is implemented for f32/f64 only).
        let (w_a, w_b) = words.split_at_mut(wa);
        let pa = unsafe { std::slice::from_raw_parts_mut(w_a.as_mut_ptr().cast::<T>(), a_len) };
        let pb = unsafe { std::slice::from_raw_parts_mut(w_b.as_mut_ptr().cast::<T>(), b_len) };
        f(pa, pb)
    })
}

/// Run `f` with one scratch slab of `len` elements (64-byte aligned) from
/// the same thread-local buffer — the fused level executor carves its
/// quadrant panels out of this.
pub(crate) fn with_pack_slab<T: Scalar, R>(len: usize, f: impl FnOnce(&mut [T]) -> R) -> R {
    const {
        assert!(std::mem::size_of::<T>() <= std::mem::size_of::<u64>());
        assert!(std::mem::align_of::<T>() <= std::mem::align_of::<u64>());
    }
    with_words(words_for::<T>(len), |words| {
        // SAFETY: as in `with_pack_bufs`.
        let slab = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<T>(), len) };
        f(slab)
    })
}

/// Capacity (in `u64` words) of this thread's pack buffer — test hook for
/// the no-allocation-after-warm-up guarantee and the Table-1 pack-buffer
/// accounting. Includes the ≤ 64-byte (`PACK_ALIGN`) alignment slack.
pub fn pack_buf_capacity_words() -> usize {
    let words = PACK_BUF.with(Cell::take);
    let cap = words.capacity();
    PACK_BUF.with(|slot| slot.set(words));
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_have_requested_lengths_and_are_writable() {
        with_pack_bufs::<f64, _>(10, 7, |a, b| {
            assert_eq!(a.len(), 10);
            assert_eq!(b.len(), 7);
            a.fill(1.5);
            b.fill(-2.5);
            assert!(a.iter().all(|&x| x == 1.5));
            assert!(b.iter().all(|&x| x == -2.5));
        });
    }

    #[test]
    fn leased_slices_are_64_byte_aligned() {
        with_pack_bufs::<f64, _>(64, 64, |a, _| {
            assert_eq!(a.as_ptr() as usize % PACK_ALIGN, 0);
        });
        with_pack_slab::<f64, _>(128, |slab| {
            assert_eq!(slab.as_ptr() as usize % PACK_ALIGN, 0);
        });
        with_pack_bufs::<f32, _>(32, 32, |a, _| {
            assert_eq!(a.as_ptr() as usize % PACK_ALIGN, 0);
        });
    }

    #[test]
    fn buffer_is_reused_not_regrown() {
        with_pack_bufs::<f64, _>(1024, 1024, |_, _| {});
        let cap = pack_buf_capacity_words();
        for _ in 0..8 {
            with_pack_bufs::<f64, _>(512, 900, |a, b| {
                a[0] = 1.0;
                b[0] = 2.0;
            });
            with_pack_slab::<f64, _>(2000, |s| s[0] = 3.0);
        }
        assert_eq!(pack_buf_capacity_words(), cap);
    }

    #[test]
    fn capacity_tracks_the_exact_requirement() {
        // reserve_exact growth: capacity == requested words + alignment
        // slack, no doubling.
        std::thread::spawn(|| {
            with_pack_slab::<f64, _>(1000, |_| {});
            assert_eq!(pack_buf_capacity_words(), 1000 + ALIGN_WORDS);
            with_pack_slab::<f64, _>(3000, |_| {});
            assert_eq!(pack_buf_capacity_words(), 3000 + ALIGN_WORDS);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn reentrant_use_is_sound() {
        with_pack_bufs::<f64, _>(16, 16, |a, _| {
            a.fill(3.0);
            with_pack_bufs::<f32, _>(8, 8, |ia, ib| {
                ia.fill(1.0);
                ib.fill(2.0);
            });
            assert!(a.iter().all(|&x| x == 3.0));
        });
    }
}
