//! Level 3 BLAS: general matrix-matrix multiply.
//!
//! `gemm` computes `C ← α op(A) op(B) + β C` — the exact contract of the
//! BLAS `DGEMM` that the paper's DGEFMM replaces. Three interchangeable
//! kernels are provided; which one runs is part of [`GemmConfig`], and the
//! experiment harness uses different configs as stand-ins for the paper's
//! three machines (see DESIGN.md §2).

mod blocked;
mod classic;
pub mod fused;
mod kernel;
mod naive;
mod packbuf;
mod parallel;
pub mod params;
pub mod symm;
pub mod syrk;
pub mod trsm;

pub use blocked::{gemm_blocked, gemm_pack_elements};
pub use classic::gemm_blocked_classic;
pub use fused::{fused_level_pack_elements, MAX_DESTS, MAX_GRID, MAX_TERMS};
pub use fused::{gemm_fused, gemm_fused_level, BlockProduct, BlockTerms, DestSpec, SumOperand};
pub use kernel::{kernel_class, KernelClass, MR, NR};
pub use naive::gemm_naive;
pub use packbuf::pack_buf_capacity_words;
pub use parallel::gemm_parallel;
pub use params::{BlockingParams, CacheInfo};
pub use symm::symm;
pub use syrk::{symmetrize_from, syrk, Uplo};
pub use trsm::{trsm, Diag, Side};

use crate::level2::Op;
use matrix::{MatMut, MatRef, Scalar};

/// Which conventional-multiplication kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GemmAlgo {
    /// Unblocked triple loop (the "slow machine" profile).
    Naive,
    /// Cache-blocked, packing, register-tiled kernel (default).
    Blocked,
    /// [`GemmAlgo::Blocked`] parallelized over column panels on the
    /// in-tree thread pool.
    BlockedParallel,
}

/// Kernel selection plus cache-blocking parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    /// Kernel choice.
    pub algo: GemmAlgo,
    /// Rows of `op(A)` packed per L2-resident block.
    pub mc: usize,
    /// Depth (k) of each packed panel (L1-ish).
    pub kc: usize,
    /// Columns of `op(B)` per outer panel (L3-ish).
    pub nc: usize,
}

impl GemmConfig {
    /// Blocked kernel with default block sizes.
    pub const fn blocked() -> Self {
        Self { algo: GemmAlgo::Blocked, mc: 128, kc: 256, nc: 512 }
    }

    /// Naive kernel (block sizes unused).
    pub const fn naive() -> Self {
        Self { algo: GemmAlgo::Naive, mc: 0, kc: 0, nc: 0 }
    }

    /// Parallel blocked kernel with default block sizes.
    pub const fn parallel() -> Self {
        Self { algo: GemmAlgo::BlockedParallel, mc: 128, kc: 256, nc: 512 }
    }

    /// Blocked kernel with `(mc, kc, nc)` derived from this machine's
    /// cache hierarchy (sysfs probe with fallbacks, cached per process) —
    /// see [`params::BlockingParams`]. This is what
    /// `StrassenConfig::dgefmm` uses.
    pub fn auto() -> Self {
        let p = params::BlockingParams::auto_f64();
        Self { algo: GemmAlgo::Blocked, mc: p.mc, kc: p.kc, nc: p.nc }
    }

    /// [`GemmConfig::auto`] with the pool-parallel kernel: same
    /// machine-derived `(mc, kc, nc)` — and therefore bitwise-identical
    /// results, since the parallel nest only re-partitions the serial
    /// loop order (see [`gemm_parallel`]) — but the jc/ic loops fan out
    /// over the worker pool. This is what
    /// `StrassenConfig::dgefmm_parallel` uses for its leaf products.
    pub fn auto_parallel() -> Self {
        Self { algo: GemmAlgo::BlockedParallel, ..Self::auto() }
    }
}

impl Default for GemmConfig {
    fn default() -> Self {
        Self::blocked()
    }
}

/// Validate the `(op, A, op, B, C)` shape triple and return `(m, k, n)`.
///
/// # Panics
/// On any dimension mismatch, mirroring the BLAS `XERBLA` error path.
pub fn check_gemm_dims<T>(
    op_a: Op,
    a: &MatRef<'_, T>,
    op_b: Op,
    b: &MatRef<'_, T>,
    c: &MatMut<'_, T>,
) -> (usize, usize, usize) {
    let (m, ka) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(ka, kb, "gemm: inner dimensions disagree ({ka} vs {kb})");
    assert_eq!(c.nrows(), m, "gemm: C has {} rows, expected {m}", c.nrows());
    assert_eq!(c.ncols(), n, "gemm: C has {} cols, expected {n}", c.ncols());
    (m, ka, n)
}

/// General matrix multiply `C ← α op(A) op(B) + β C`.
///
/// This is the workspace-wide replacement for the BLAS `DGEMM`/`SGEMM`
/// call; every higher layer (Strassen schedules, eigensolver, harness)
/// funnels through here for its conventional multiplications.
pub fn gemm<T: Scalar>(
    cfg: &GemmConfig,
    alpha: T,
    op_a: Op,
    a: MatRef<'_, T>,
    op_b: Op,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    match cfg.algo {
        GemmAlgo::Naive => gemm_naive(alpha, op_a, a, op_b, b, beta, c),
        GemmAlgo::Blocked => gemm_blocked(cfg, alpha, op_a, a, op_b, b, beta, c),
        GemmAlgo::BlockedParallel => gemm_parallel(cfg, alpha, op_a, a, op_b, b, beta, c),
    }
}

/// Scale `C` by `beta` in place with BLAS β-semantics: `beta == 0`
/// overwrites with zeros (never reading `C`, so NaN/garbage is cleared)
/// and `beta == 1` is a no-op.
pub fn scale_in_place<T: Scalar>(beta: T, mut c: MatMut<'_, T>) {
    scale_c(beta, &mut c);
}

pub(crate) fn scale_c<T: Scalar>(beta: T, c: &mut MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else {
        c.scale(beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    /// Reference O(mkn) product computed with plain indexing — the oracle
    /// every kernel is compared against.
    pub(crate) fn reference_gemm(
        alpha: f64,
        op_a: Op,
        a: &Matrix<f64>,
        op_b: Op,
        b: &Matrix<f64>,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Matrix<f64> {
        let (m, k) = op_a.dims(&a.as_ref());
        let (_, n) = op_b.dims(&b.as_ref());
        let get_a = |i: usize, p: usize| match op_a {
            Op::NoTrans => a.at(i, p),
            Op::Trans => a.at(p, i),
        };
        let get_b = |p: usize, j: usize| match op_b {
            Op::NoTrans => b.at(p, j),
            Op::Trans => b.at(j, p),
        };
        Matrix::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for p in 0..k {
                s += get_a(i, p) * get_b(p, j);
            }
            alpha * s + beta * c.at(i, j)
        })
    }

    fn all_kernels() -> Vec<GemmConfig> {
        vec![
            GemmConfig::naive(),
            GemmConfig::blocked(),
            GemmConfig { algo: GemmAlgo::Blocked, mc: 8, kc: 8, nc: 8 },
            GemmConfig::parallel(),
        ]
    }

    #[test]
    fn kernels_match_reference_on_assorted_shapes() {
        let shapes = [(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 1, 9), (16, 16, 16), (33, 17, 29), (64, 48, 80)];
        for cfg in all_kernels() {
            for &(m, k, n) in &shapes {
                for (op_a, op_b) in [
                    (Op::NoTrans, Op::NoTrans),
                    (Op::Trans, Op::NoTrans),
                    (Op::NoTrans, Op::Trans),
                    (Op::Trans, Op::Trans),
                ] {
                    let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
                    let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
                    let a = random::uniform::<f64>(ar, ac, 1);
                    let b = random::uniform::<f64>(br, bc, 2);
                    let c0 = random::uniform::<f64>(m, n, 3);
                    let expect = reference_gemm(0.5, op_a, &a, op_b, &b, -1.5, &c0);
                    let mut c = c0.clone();
                    gemm(&cfg, 0.5, op_a, a.as_ref(), op_b, b.as_ref(), -1.5, c.as_mut());
                    matrix::norms::assert_allclose(
                        c.as_ref(),
                        expect.as_ref(),
                        1e-12,
                        &format!("{cfg:?} {m}x{k}x{n} {op_a:?}/{op_b:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        for cfg in all_kernels() {
            let a = Matrix::from_row_major(1, 1, &[2.0]);
            let b = Matrix::from_row_major(1, 1, &[3.0]);
            let mut c = Matrix::from_row_major(1, 1, &[f64::NAN]);
            gemm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
            assert_eq!(c.at(0, 0), 6.0, "{cfg:?}");
        }
    }

    #[test]
    fn alpha_zero_only_scales() {
        for cfg in all_kernels() {
            let a = random::uniform::<f64>(4, 4, 1);
            let b = random::uniform::<f64>(4, 4, 2);
            let mut c = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
            gemm(&cfg, 0.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 2.0, c.as_mut());
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(c.at(i, j), 2.0 * (i + j) as f64, "{cfg:?}");
                }
            }
        }
    }

    #[test]
    fn works_on_strided_views() {
        // Operate on interior submatrices of larger buffers so ld > nrows.
        let big_a = random::uniform::<f64>(10, 10, 7);
        let big_b = random::uniform::<f64>(10, 10, 8);
        let mut big_c = Matrix::<f64>::zeros(10, 10);
        let a = big_a.as_ref().submatrix(1, 1, 4, 5);
        let b = big_b.as_ref().submatrix(2, 0, 5, 3);
        let a_own = a.to_owned_matrix();
        let b_own = b.to_owned_matrix();
        let expect = reference_gemm(1.0, Op::NoTrans, &a_own, Op::NoTrans, &b_own, 0.0, &Matrix::zeros(4, 3));
        for cfg in all_kernels() {
            let mut cm = big_c.as_mut();
            let cv = cm.submatrix_mut(3, 3, 4, 3);
            gemm(&cfg, 1.0, Op::NoTrans, a, Op::NoTrans, b, 0.0, cv);
            let cv = big_c.as_ref().submatrix(3, 3, 4, 3);
            matrix::norms::assert_allclose(cv, expect.as_ref(), 1e-13, &format!("{cfg:?}"));
            // The rest of big_c must be untouched.
            assert_eq!(big_c.at(0, 0), 0.0);
            assert_eq!(big_c.at(9, 9), 0.0);
        }
    }

    #[test]
    fn empty_k_scales_c_only() {
        for cfg in all_kernels() {
            let a = Matrix::<f64>::zeros(3, 0);
            let b = Matrix::<f64>::zeros(0, 2);
            let mut c = Matrix::from_fn(3, 2, |_, _| 1.0);
            gemm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 3.0, c.as_mut());
            assert!(c.as_slice().iter().all(|&x| x == 3.0), "{cfg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm(&GemmConfig::blocked(), 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
    }
}
