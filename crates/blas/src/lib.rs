//! From-scratch BLAS subset: the conventional-multiplication substrate
//! beneath the SC '96 Strassen reproduction.
//!
//! The paper's DGEFMM is written "in C utilizing the BLAS" — it calls
//! `DGEMM` below the cutoff, `DGER`/`DGEMV` in the dynamic-peeling fixup,
//! and elementwise add/subtract kernels for the Winograd stages. No
//! vendor BLAS is available here, so this crate provides those routines:
//!
//! * [`level1`] — `axpy`, `scal`, `copy`, `dot`, `nrm2`, `asum`, `iamax`;
//! * [`level2`] — `gemv`, `ger`, and the [`level2::Op`] transpose selector;
//! * [`level3`] — `gemm` with three kernels (naive, cache-blocked+packed,
//!   pool-parallel) selected via [`level3::GemmConfig`];
//! * [`add`] — the matrix add/subtract "G" kernels;
//! * [`vector`] — strided vector views over rows/columns.
//!
//! # Example
//!
//! ```
//! use blas::level3::{gemm, GemmConfig};
//! use blas::level2::Op;
//! use matrix::Matrix;
//!
//! let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
//! let b = Matrix::identity(2);
//! let mut c = Matrix::zeros(2, 2);
//! gemm(&GemmConfig::blocked(), 1.0, Op::NoTrans, a.as_ref(),
//!      Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]
#![allow(clippy::too_many_arguments, clippy::manual_is_multiple_of, clippy::needless_range_loop)]

pub mod add;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod named;
pub mod vector;

pub use level2::Op;
pub use level3::{gemm, GemmAlgo, GemmConfig};
pub use named::{dgemm, dgemv, dger, sgemm};
pub use vector::{VecMut, VecRef};
