//! Level 2 BLAS subset: matrix-vector operations (`GEMV`, `GER`).
//!
//! These are exactly the routines the paper's dynamic-peeling fixup uses
//! (Section 3.3): one rank-one update and two matrix-vector products per
//! peeled multiply.

use crate::vector::{VecMut, VecRef};
use matrix::{MatMut, MatRef, Scalar};

/// Transposition selector for `op(A)` arguments, as in the BLAS `TRANSA`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `op(A) = A`
    NoTrans,
    /// `op(A) = Aᵀ`
    Trans,
}

impl Op {
    /// Dimensions of `op(A)` given the stored matrix `a`.
    #[inline]
    pub fn dims<T>(self, a: &MatRef<'_, T>) -> (usize, usize) {
        match self {
            Op::NoTrans => (a.nrows(), a.ncols()),
            Op::Trans => (a.ncols(), a.nrows()),
        }
    }
}

/// General matrix-vector product `y ← α op(A) x + β y`.
///
/// `op(A)` is `m x n`; `x` has length `n` and `y` length `m`.
pub fn gemv<T: Scalar>(alpha: T, op: Op, a: MatRef<'_, T>, x: VecRef<'_, T>, beta: T, mut y: VecMut<'_, T>) {
    let (m, n) = op.dims(&a);
    assert_eq!(x.len(), n, "gemv: x length {} != {}", x.len(), n);
    assert_eq!(y.len(), m, "gemv: y length {} != {}", y.len(), m);

    if beta == T::ZERO {
        for i in 0..m {
            // SAFETY: i < m == y.len().
            unsafe {
                *y.get_unchecked_mut(i) = T::ZERO;
            }
        }
    } else if beta != T::ONE {
        crate::level1::scal(beta, y.rb_mut());
    }
    if alpha == T::ZERO || m == 0 || n == 0 {
        return;
    }

    match op {
        // y += alpha * A x: accumulate column-by-column (axpy-style), the
        // cache-friendly order for column-major A.
        Op::NoTrans => {
            for j in 0..a.ncols() {
                // SAFETY: j < ncols == x.len().
                let xj = alpha * unsafe { x.get_unchecked(j) };
                if xj == T::ZERO {
                    continue;
                }
                let col = a.col(j);
                for (i, &aij) in col.iter().enumerate() {
                    // SAFETY: i < nrows == y.len().
                    unsafe {
                        *y.get_unchecked_mut(i) += xj * aij;
                    }
                }
            }
        }
        // y += alpha * Aᵀ x: each output element is a dot with a column.
        Op::Trans => {
            for j in 0..a.ncols() {
                let col = a.col(j);
                let mut s = T::ZERO;
                for (i, &aij) in col.iter().enumerate() {
                    // SAFETY: i < nrows == x.len().
                    s += aij * unsafe { x.get_unchecked(i) };
                }
                // SAFETY: j < ncols == y.len().
                unsafe {
                    *y.get_unchecked_mut(j) += alpha * s;
                }
            }
        }
    }
}

/// Rank-one update `A ← α x yᵀ + A` where `A` is `m x n`, `x` length `m`,
/// `y` length `n` (BLAS `GER`).
pub fn ger<T: Scalar>(alpha: T, x: VecRef<'_, T>, y: VecRef<'_, T>, mut a: MatMut<'_, T>) {
    assert_eq!(x.len(), a.nrows(), "ger: x length mismatch");
    assert_eq!(y.len(), a.ncols(), "ger: y length mismatch");
    if alpha == T::ZERO {
        return;
    }
    for j in 0..a.ncols() {
        // SAFETY: j < ncols == y.len().
        let yj = alpha * unsafe { y.get_unchecked(j) };
        if yj == T::ZERO {
            continue;
        }
        let col = a.col_mut(j);
        for (i, aij) in col.iter_mut().enumerate() {
            // SAFETY: i < nrows == x.len().
            *aij += unsafe { x.get_unchecked(i) } * yj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::Matrix;

    fn a23() -> Matrix<f64> {
        // [1 2 3]
        // [4 5 6]
        Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn gemv_notrans() {
        let a = a23();
        let x = [1.0f64, 0.0, -1.0];
        let mut y = [10.0f64, 10.0];
        gemv(1.0, Op::NoTrans, a.as_ref(), VecRef::from_slice(&x), 0.0, VecMut::from_slice(&mut y));
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = a23();
        let x = [1.0f64, 1.0];
        let mut y = [0.0f64; 3];
        gemv(1.0, Op::Trans, a.as_ref(), VecRef::from_slice(&x), 0.0, VecMut::from_slice(&mut y));
        assert_eq!(y, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_alpha_beta() {
        let a = a23();
        let x = [1.0f64, 1.0, 1.0];
        let mut y = [1.0f64, 2.0];
        // y = 2*A*1 + 3*y
        gemv(2.0, Op::NoTrans, a.as_ref(), VecRef::from_slice(&x), 3.0, VecMut::from_slice(&mut y));
        assert_eq!(y, [2.0 * 6.0 + 3.0, 2.0 * 15.0 + 6.0]);
    }

    #[test]
    fn gemv_beta_zero_ignores_nan_y() {
        let a = a23();
        let x = [1.0f64, 1.0, 1.0];
        let mut y = [f64::NAN, f64::NAN];
        gemv(1.0, Op::NoTrans, a.as_ref(), VecRef::from_slice(&x), 0.0, VecMut::from_slice(&mut y));
        assert_eq!(y, [6.0, 15.0]);
    }

    #[test]
    fn ger_rank_one() {
        let mut a = Matrix::<f64>::zeros(2, 3);
        let x = [1.0f64, 2.0];
        let y = [3.0f64, 4.0, 5.0];
        ger(2.0, VecRef::from_slice(&x), VecRef::from_slice(&y), a.as_mut());
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(a.at(i, j), 2.0 * x[i] * y[j]);
            }
        }
    }

    #[test]
    fn ger_accumulates() {
        let mut a = Matrix::from_row_major(1, 1, &[7.0]);
        let x = [2.0f64];
        let y = [3.0f64];
        ger(1.0, VecRef::from_slice(&x), VecRef::from_slice(&y), a.as_mut());
        assert_eq!(a.at(0, 0), 13.0);
    }

    #[test]
    fn op_dims() {
        let a = a23();
        assert_eq!(Op::NoTrans.dims(&a.as_ref()), (2, 3));
        assert_eq!(Op::Trans.dims(&a.as_ref()), (3, 2));
    }
}
