//! Strided vector views over matrix rows, columns, and plain slices.
//!
//! BLAS Level-1/2 routines take vectors with an *increment* (`incx`); the
//! dynamic-peeling fixup in the Strassen code needs exactly that, because
//! the peeled row of `A` is a stride-`ld` walk through column-major
//! storage while the peeled column of `B` is contiguous.

use core::marker::PhantomData;
use matrix::{MatMut, MatRef, Scalar};

/// Immutable strided vector view.
#[derive(Clone, Copy)]
pub struct VecRef<'a, T> {
    ptr: *const T,
    len: usize,
    stride: usize,
    _marker: PhantomData<&'a T>,
}

/// Mutable strided vector view.
pub struct VecMut<'a, T> {
    ptr: *mut T,
    len: usize,
    stride: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: same reasoning as MatRef/MatMut — these are borrows.
unsafe impl<T: Sync> Send for VecRef<'_, T> {}
unsafe impl<T: Sync> Sync for VecRef<'_, T> {}
unsafe impl<T: Send> Send for VecMut<'_, T> {}

impl<'a, T: Scalar> VecRef<'a, T> {
    /// View an entire contiguous slice (stride 1).
    #[inline]
    pub fn from_slice(s: &'a [T]) -> Self {
        Self { ptr: s.as_ptr(), len: s.len(), stride: 1, _marker: PhantomData }
    }

    /// Column `j` of `a` (contiguous).
    #[inline]
    pub fn from_col(a: MatRef<'a, T>, j: usize) -> Self {
        Self::from_slice(a.col(j))
    }

    /// Row `i` of `a` (stride = leading dimension).
    #[inline]
    pub fn from_row(a: MatRef<'a, T>, i: usize) -> Self {
        assert!(i < a.nrows(), "row {i} out of bounds ({})", a.nrows());
        // SAFETY: elements i + j*ld for j < ncols are in bounds.
        unsafe { Self { ptr: a.as_ptr().add(i), len: a.ncols(), stride: a.ld(), _marker: PhantomData } }
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stride between consecutive elements.
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element `i`.
    #[inline(always)]
    pub fn at(&self, i: usize) -> T {
        assert!(i < self.len);
        // SAFETY: just checked.
        unsafe { *self.ptr.add(i * self.stride) }
    }

    /// Element `i` without bounds checking.
    ///
    /// # Safety
    /// `i < len`.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        *self.ptr.add(i * self.stride)
    }

    /// Contiguous slice access when stride == 1.
    #[inline]
    pub fn as_slice(&self) -> Option<&'a [T]> {
        if self.stride == 1 {
            // SAFETY: contiguous region of len elements.
            Some(unsafe { core::slice::from_raw_parts(self.ptr, self.len) })
        } else {
            None
        }
    }
}

impl<'a, T: Scalar> VecMut<'a, T> {
    /// View an entire contiguous mutable slice (stride 1).
    #[inline]
    pub fn from_slice(s: &'a mut [T]) -> Self {
        Self { ptr: s.as_mut_ptr(), len: s.len(), stride: 1, _marker: PhantomData }
    }

    /// Column `j` of `a` (contiguous).
    #[inline]
    pub fn from_col(mut a: MatMut<'a, T>, j: usize) -> Self {
        assert!(j < a.ncols());
        let nrows = a.nrows();
        let ld = a.ld();
        // SAFETY: column j occupies offsets j*ld .. j*ld+nrows.
        unsafe { Self { ptr: a.as_mut_ptr().add(j * ld), len: nrows, stride: 1, _marker: PhantomData } }
    }

    /// Row `i` of `a` (stride = leading dimension).
    #[inline]
    pub fn from_row(mut a: MatMut<'a, T>, i: usize) -> Self {
        assert!(i < a.nrows());
        let ncols = a.ncols();
        let ld = a.ld();
        // SAFETY: elements i + j*ld for j < ncols are in bounds.
        unsafe { Self { ptr: a.as_mut_ptr().add(i), len: ncols, stride: ld, _marker: PhantomData } }
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stride between consecutive elements.
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Immutable view of the same elements.
    #[inline]
    pub fn as_ref(&self) -> VecRef<'_, T> {
        VecRef { ptr: self.ptr, len: self.len, stride: self.stride, _marker: PhantomData }
    }

    /// Mutable reborrow with a shorter lifetime.
    #[inline]
    pub fn rb_mut(&mut self) -> VecMut<'_, T> {
        VecMut { ptr: self.ptr, len: self.len, stride: self.stride, _marker: PhantomData }
    }

    /// Element `i`.
    #[inline(always)]
    pub fn at(&self, i: usize) -> T {
        self.as_ref().at(i)
    }

    /// Write element `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, v: T) {
        assert!(i < self.len);
        // SAFETY: just checked.
        unsafe { *self.ptr.add(i * self.stride) = v }
    }

    /// Mutable element reference without bounds checking.
    ///
    /// # Safety
    /// `i < len`.
    #[inline(always)]
    pub unsafe fn get_unchecked_mut(&mut self, i: usize) -> &mut T {
        &mut *self.ptr.add(i * self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::Matrix;

    #[test]
    fn slice_views() {
        let s = [1.0f64, 2.0, 3.0];
        let v = VecRef::from_slice(&s);
        assert_eq!(v.len(), 3);
        assert_eq!(v.stride(), 1);
        assert_eq!(v.at(2), 3.0);
        assert_eq!(v.as_slice(), Some(&s[..]));
    }

    #[test]
    fn row_view_strides_through_columns() {
        let m = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as f64);
        let r = VecRef::from_row(m.as_ref(), 1);
        assert_eq!(r.len(), 4);
        assert_eq!(r.stride(), 3);
        for j in 0..4 {
            assert_eq!(r.at(j), (10 + j) as f64);
        }
        assert!(r.as_slice().is_none());
    }

    #[test]
    fn col_view_is_contiguous() {
        let m = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as f64);
        let c = VecRef::from_col(m.as_ref(), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_slice().unwrap(), &[2.0, 12.0, 22.0]);
    }

    #[test]
    fn mutable_row_write() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        {
            let mut r = VecMut::from_row(m.as_mut(), 2);
            for j in 0..4 {
                r.set(j, j as f64);
            }
        }
        for j in 0..4 {
            assert_eq!(m.at(2, j), j as f64);
        }
    }

    #[test]
    fn mutable_col_write() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        {
            let mut c = VecMut::from_col(m.as_mut(), 1);
            c.set(0, 5.0);
            c.set(2, 7.0);
        }
        assert_eq!(m.at(0, 1), 5.0);
        assert_eq!(m.at(2, 1), 7.0);
    }
}
