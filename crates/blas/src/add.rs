//! Matrix addition/subtraction kernels — the paper's `G(m, n)` operations.
//!
//! Strassen's algorithm spends all of its non-multiplicative work in
//! these elementwise passes (stages (1), (2), and (4) of the Winograd
//! variant), so they get dedicated, slice-based kernels rather than going
//! through scalar indexing. Each routine works on arbitrary-`ld` views so
//! the schedules can write directly into quadrants of `C` or into
//! workspace temporaries.

use matrix::{MatMut, MatRef, Scalar};

#[inline(always)]
fn zip_cols<T: Scalar>(mut c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>, f: impl Fn(T, T) -> T) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), a.ncols());
    for j in 0..c.ncols() {
        let (ac, bc, cc) = (a.col(j), b.col(j), c.col_mut(j));
        for i in 0..cc.len() {
            cc[i] = f(ac[i], bc[i]);
        }
    }
}

/// `C ← A + B`.
pub fn add_into<T: Scalar>(c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    zip_cols(c, a, b, |x, y| x + y);
}

/// `C ← A − B`.
pub fn sub_into<T: Scalar>(c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    zip_cols(c, a, b, |x, y| x - y);
}

/// `C ← α (A + B)` — the scaled sums STRASSEN2 uses to fold `α` into the
/// operand additions instead of the products.
pub fn add_into_scaled<T: Scalar>(c: MatMut<'_, T>, alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    zip_cols(c, a, b, move |x, y| alpha * (x + y));
}

/// `C ← α (A − B)`.
pub fn sub_into_scaled<T: Scalar>(c: MatMut<'_, T>, alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    zip_cols(c, a, b, move |x, y| alpha * (x - y));
}

/// `C ← C + A`.
pub fn accum<T: Scalar>(mut c: MatMut<'_, T>, a: MatRef<'_, T>) {
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), a.ncols());
    for j in 0..c.ncols() {
        let (ac, cc) = (a.col(j), c.col_mut(j));
        for i in 0..cc.len() {
            cc[i] += ac[i];
        }
    }
}

/// `C ← C − A`.
pub fn accum_sub<T: Scalar>(mut c: MatMut<'_, T>, a: MatRef<'_, T>) {
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), a.ncols());
    for j in 0..c.ncols() {
        let (ac, cc) = (a.col(j), c.col_mut(j));
        for i in 0..cc.len() {
            cc[i] -= ac[i];
        }
    }
}

/// `C ← A − C` (reverse subtraction in place — used by the Winograd
/// stage-2 sums like `T2 = B22 − T1` where `T1` already sits in the
/// temporary being overwritten).
pub fn rsub_into<T: Scalar>(mut c: MatMut<'_, T>, a: MatRef<'_, T>) {
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), a.ncols());
    for j in 0..c.ncols() {
        let (ac, cc) = (a.col(j), c.col_mut(j));
        for i in 0..cc.len() {
            cc[i] = ac[i] - cc[i];
        }
    }
}

/// `C ← α A + β C` (matrix-level `axpby`; with `β = 0` this is a scaled
/// copy that never reads `C`, matching BLAS β-semantics).
pub fn axpby<T: Scalar>(alpha: T, a: MatRef<'_, T>, beta: T, mut c: MatMut<'_, T>) {
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), a.ncols());
    if beta == T::ZERO {
        for j in 0..c.ncols() {
            let (ac, cc) = (a.col(j), c.col_mut(j));
            for i in 0..cc.len() {
                cc[i] = alpha * ac[i];
            }
        }
    } else {
        for j in 0..c.ncols() {
            let (ac, cc) = (a.col(j), c.col_mut(j));
            for i in 0..cc.len() {
                cc[i] = alpha * ac[i] + beta * cc[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::Matrix;

    fn m(v: &[f64]) -> Matrix<f64> {
        Matrix::from_row_major(2, 2, v)
    }

    #[test]
    fn add_and_sub() {
        let a = m(&[1.0, 2.0, 3.0, 4.0]);
        let b = m(&[10.0, 20.0, 30.0, 40.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        add_into(c.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(c, m(&[11.0, 22.0, 33.0, 44.0]));
        sub_into(c.as_mut(), b.as_ref(), a.as_ref());
        assert_eq!(c, m(&[9.0, 18.0, 27.0, 36.0]));
    }

    #[test]
    fn scaled_variants() {
        let a = m(&[1.0, 2.0, 3.0, 4.0]);
        let b = m(&[1.0, 1.0, 1.0, 1.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        add_into_scaled(c.as_mut(), 2.0, a.as_ref(), b.as_ref());
        assert_eq!(c, m(&[4.0, 6.0, 8.0, 10.0]));
        sub_into_scaled(c.as_mut(), 3.0, a.as_ref(), b.as_ref());
        assert_eq!(c, m(&[0.0, 3.0, 6.0, 9.0]));
    }

    #[test]
    fn accumulators() {
        let a = m(&[1.0, 1.0, 1.0, 1.0]);
        let mut c = m(&[5.0, 5.0, 5.0, 5.0]);
        accum(c.as_mut(), a.as_ref());
        assert_eq!(c, m(&[6.0, 6.0, 6.0, 6.0]));
        accum_sub(c.as_mut(), a.as_ref());
        accum_sub(c.as_mut(), a.as_ref());
        assert_eq!(c, m(&[4.0, 4.0, 4.0, 4.0]));
    }

    #[test]
    fn rsub_reverses_operands() {
        let a = m(&[10.0, 10.0, 10.0, 10.0]);
        let mut c = m(&[1.0, 2.0, 3.0, 4.0]);
        rsub_into(c.as_mut(), a.as_ref());
        assert_eq!(c, m(&[9.0, 8.0, 7.0, 6.0]));
    }

    #[test]
    fn axpby_beta_zero_ignores_garbage() {
        let a = m(&[1.0, 2.0, 3.0, 4.0]);
        let mut c = m(&[f64::NAN; 4]);
        axpby(2.0, a.as_ref(), 0.0, c.as_mut());
        assert_eq!(c, m(&[2.0, 4.0, 6.0, 8.0]));
    }

    #[test]
    fn axpby_general() {
        let a = m(&[1.0, 2.0, 3.0, 4.0]);
        let mut c = m(&[1.0, 1.0, 1.0, 1.0]);
        axpby(2.0, a.as_ref(), 10.0, c.as_mut());
        assert_eq!(c, m(&[12.0, 14.0, 16.0, 18.0]));
    }

    #[test]
    fn works_on_views_with_ld() {
        let big = Matrix::from_fn(6, 6, |i, j| (i + 10 * j) as f64);
        let a = big.as_ref().submatrix(0, 0, 3, 3);
        let b = big.as_ref().submatrix(3, 3, 3, 3);
        let mut out = Matrix::<f64>::zeros(3, 3);
        add_into(out.as_mut(), a, b);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(out.at(i, j), big.at(i, j) + big.at(i + 3, j + 3));
            }
        }
    }
}
