//! BLAS-named concrete entry points (`dgemm`, `sgemm`, `dger`, `dgemv`).
//!
//! The generic routines are the real implementation; these aliases give
//! callers porting FORTRAN-interface code the exact names the paper uses
//! (`DGEMM`, `DGER`, `DGEMV`), fixed to `f64`/`f32`.

use crate::level2::Op;
use crate::level3::{gemm, GemmConfig};
use crate::vector::{VecMut, VecRef};
use matrix::{MatMut, MatRef};

/// `DGEMM`: `C ← α op(A) op(B) + β C` in `f64` with the default blocked
/// kernel.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    alpha: f64,
    op_a: Op,
    a: MatRef<'_, f64>,
    op_b: Op,
    b: MatRef<'_, f64>,
    beta: f64,
    c: MatMut<'_, f64>,
) {
    gemm(&GemmConfig::blocked(), alpha, op_a, a, op_b, b, beta, c);
}

/// `SGEMM`: the `f32` counterpart of [`dgemm`].
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    alpha: f32,
    op_a: Op,
    a: MatRef<'_, f32>,
    op_b: Op,
    b: MatRef<'_, f32>,
    beta: f32,
    c: MatMut<'_, f32>,
) {
    gemm(&GemmConfig::blocked(), alpha, op_a, a, op_b, b, beta, c);
}

/// `DGEMV`: `y ← α op(A) x + β y` in `f64`.
pub fn dgemv(alpha: f64, op: Op, a: MatRef<'_, f64>, x: VecRef<'_, f64>, beta: f64, y: VecMut<'_, f64>) {
    crate::level2::gemv(alpha, op, a, x, beta, y);
}

/// `DGER`: `A ← α x yᵀ + A` in `f64`.
pub fn dger(alpha: f64, x: VecRef<'_, f64>, y: VecRef<'_, f64>, a: MatMut<'_, f64>) {
    crate::level2::ger(alpha, x, y, a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{random, Matrix};

    #[test]
    fn dgemm_alias_works() {
        let a = random::uniform::<f64>(6, 4, 1);
        let b = random::uniform::<f64>(4, 5, 2);
        let mut c1 = Matrix::<f64>::zeros(6, 5);
        let mut c2 = Matrix::<f64>::zeros(6, 5);
        dgemm(1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c1.as_mut());
        gemm(&GemmConfig::blocked(), 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c2.as_mut());
        assert_eq!(c1, c2);
    }

    #[test]
    fn sgemm_alias_works() {
        let a = random::uniform::<f32>(3, 3, 1);
        let mut c = Matrix::<f32>::zeros(3, 3);
        sgemm(
            1.0,
            Op::NoTrans,
            a.as_ref(),
            Op::NoTrans,
            Matrix::<f32>::identity(3).as_ref(),
            0.0,
            c.as_mut(),
        );
        matrix::norms::assert_allclose(c.as_ref(), a.as_ref(), 1e-6, "sgemm");
    }

    #[test]
    fn level2_aliases_work() {
        let a = random::uniform::<f64>(3, 3, 5);
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [0.0f64; 3];
        dgemv(1.0, Op::NoTrans, a.as_ref(), VecRef::from_slice(&x), 0.0, VecMut::from_slice(&mut y));
        for i in 0..3 {
            let expect: f64 = (0..3).map(|j| a.at(i, j) * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-14);
        }

        let mut m = Matrix::<f64>::zeros(3, 3);
        dger(2.0, VecRef::from_slice(&x), VecRef::from_slice(&x), m.as_mut());
        assert_eq!(m.at(1, 2), 2.0 * 2.0 * 3.0);
    }
}
