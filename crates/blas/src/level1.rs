//! Level 1 BLAS subset: vector-vector operations.
//!
//! Naming follows the BLAS (`axpy`, `dot`, `nrm2`, …) minus the type
//! prefix — everything is generic over [`Scalar`].

use crate::vector::{VecMut, VecRef};
use matrix::Scalar;

/// `y ← α x + y`.
pub fn axpy<T: Scalar>(alpha: T, x: VecRef<'_, T>, mut y: VecMut<'_, T>) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == T::ZERO {
        return;
    }
    let n = x.len();
    for i in 0..n {
        // SAFETY: i < n == len of both.
        unsafe {
            *y.get_unchecked_mut(i) += alpha * x.get_unchecked(i);
        }
    }
}

/// `x ← α x`.
pub fn scal<T: Scalar>(alpha: T, mut x: VecMut<'_, T>) {
    if alpha == T::ONE {
        return;
    }
    for i in 0..x.len() {
        // SAFETY: i < len.
        unsafe {
            *x.get_unchecked_mut(i) *= alpha;
        }
    }
}

/// `y ← x`.
pub fn copy<T: Scalar>(x: VecRef<'_, T>, mut y: VecMut<'_, T>) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    for i in 0..x.len() {
        // SAFETY: i < len of both.
        unsafe {
            *y.get_unchecked_mut(i) = x.get_unchecked(i);
        }
    }
}

/// Dot product `xᵀ y`.
pub fn dot<T: Scalar>(x: VecRef<'_, T>, y: VecRef<'_, T>) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Four partial accumulators so the reduction has instruction-level
    // parallelism; tail handled separately.
    let n = x.len();
    let chunks = n / 4;
    let mut s0 = T::ZERO;
    let mut s1 = T::ZERO;
    let mut s2 = T::ZERO;
    let mut s3 = T::ZERO;
    for c in 0..chunks {
        let i = 4 * c;
        // SAFETY: i+3 < 4*chunks <= n.
        unsafe {
            s0 += x.get_unchecked(i) * y.get_unchecked(i);
            s1 += x.get_unchecked(i + 1) * y.get_unchecked(i + 1);
            s2 += x.get_unchecked(i + 2) * y.get_unchecked(i + 2);
            s3 += x.get_unchecked(i + 3) * y.get_unchecked(i + 3);
        }
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        // SAFETY: i < n.
        unsafe {
            s += x.get_unchecked(i) * y.get_unchecked(i);
        }
    }
    s
}

/// Euclidean norm `‖x‖₂` (unscaled textbook version — fine for the value
/// ranges the experiments use).
pub fn nrm2<T: Scalar>(x: VecRef<'_, T>) -> T {
    dot(x, x).sqrt()
}

/// Sum of absolute values `‖x‖₁`.
pub fn asum<T: Scalar>(x: VecRef<'_, T>) -> T {
    let mut s = T::ZERO;
    for i in 0..x.len() {
        // SAFETY: i < len.
        unsafe {
            s += x.get_unchecked(i).abs();
        }
    }
    s
}

/// Index of the element with the largest absolute value (first on ties);
/// `None` for an empty vector.
pub fn iamax<T: Scalar>(x: VecRef<'_, T>) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut bestv = x.at(0).abs();
    for i in 1..x.len() {
        // SAFETY: i < len.
        let v = unsafe { x.get_unchecked(i) }.abs();
        if v > bestv {
            best = i;
            bestv = v;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::Matrix;

    #[test]
    fn axpy_contiguous() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0f64, 20.0, 30.0];
        axpy(2.0, VecRef::from_slice(&x), VecMut::from_slice(&mut y));
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let x = [f64::NAN; 3]; // would poison y if touched
        let mut y = [1.0f64, 2.0, 3.0];
        axpy(0.0, VecRef::from_slice(&x), VecMut::from_slice(&mut y));
        assert_eq!(y, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_strided_row() {
        let m = Matrix::from_fn(3, 4, |_, j| j as f64);
        let mut y = [0.0f64; 4];
        axpy(1.0, VecRef::from_row(m.as_ref(), 1), VecMut::from_slice(&mut y));
        assert_eq!(y, [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_handles_tails() {
        for n in 0..10 {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let expect: f64 = (0..n).map(|i| (i * i) as f64).sum();
            assert_eq!(dot(VecRef::from_slice(&x), VecRef::from_slice(&x)), expect, "n={n}");
        }
    }

    #[test]
    fn nrm2_and_asum() {
        let x = [3.0f64, -4.0];
        assert_eq!(nrm2(VecRef::from_slice(&x)), 5.0);
        assert_eq!(asum(VecRef::from_slice(&x)), 7.0);
    }

    #[test]
    fn iamax_first_max_wins() {
        let x = [1.0f64, -5.0, 5.0, 2.0];
        assert_eq!(iamax(VecRef::from_slice(&x)), Some(1));
        let e: [f64; 0] = [];
        assert_eq!(iamax(VecRef::from_slice(&e)), None);
    }

    #[test]
    fn scal_and_copy() {
        let mut x = [1.0f64, 2.0];
        scal(3.0, VecMut::from_slice(&mut x));
        assert_eq!(x, [3.0, 6.0]);
        let mut y = [0.0f64; 2];
        copy(VecRef::from_slice(&x), VecMut::from_slice(&mut y));
        assert_eq!(y, x);
    }
}
