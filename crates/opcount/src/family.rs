//! Generalized rank-R ⟨m,k,n⟩ recursion cost analysis.
//!
//! The paper's eq. (2) is the special case "rank 7, base case ⟨2,2,2⟩,
//! every child in the β = 0 class" of a family of recurrences. A
//! coefficient-table algorithm of rank `R` over an ⟨dm,dk,dn⟩ base case,
//! with schedule-dependent elementwise pass counts, obeys
//!
//! ```text
//! W_cls(m,k,n) = M_cls(m,k,n)                       if cutoff fires
//!              = Σ_child W_child(m/dm, k/dk, n/dn)
//!                + a·G(m/dm, k/dk) + b·G(k/dk, n/dn) + c·G(m/dm, n/dn)
//! ```
//!
//! where `cls` is the β class the node runs in (`β = 0` leaves cost
//! `2mkn − mn`, multiply-accumulate leaves `2mkn`), the child mix and
//! the pass counts `(a, b, c)` depend on the class, and every add pass
//! costs its destination area. [`FamilySpec`] carries both class
//! descriptions; [`family_flops`] evaluates the recurrence exactly in
//! `u128` (no float rounding at any depth); [`family_closed_form`] is
//! the uniform-class geometric evaluation that reduces to the paper's
//! eqs. (3)–(5) at `R = 7`, ⟨2,2,2⟩.
//!
//! This crate stays pure analysis: the pass counts for a concrete
//! compiled schedule come from the caller (the core crate's tests feed
//! its `CompiledSchedule` numbers in), and [`bdpz_spec`] encodes the
//! Boyer–Dumas–Pernet–Zhou two-temp/in-place pair whose counts are
//! fixed by the ISSAC '09 schedules themselves.

/// Per-level structure of one β class of a family recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassLevel {
    /// Children launched in the `β = 0` class (fresh products).
    pub children_beta_zero: u128,
    /// Children launched as multiply-accumulates (`β = 1`).
    pub children_accumulate: u128,
    /// Elementwise add passes on A-shaped blocks (`m/dm × k/dk`).
    pub a_passes: u128,
    /// Elementwise add passes on B-shaped blocks (`k/dk × n/dn`).
    pub b_passes: u128,
    /// Elementwise add passes on C-shaped blocks (`m/dm × n/dn`).
    pub c_passes: u128,
}

/// A two-class rank-R family recursion: base-case split plus the level
/// structure for each β class a node can run in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilySpec {
    /// Base-case split ⟨dm, dk, dn⟩.
    pub dims: (u128, u128, u128),
    /// Level structure when a node is entered with `β = 0`.
    pub beta_zero: ClassLevel,
    /// Level structure when a node is entered as a multiply-accumulate.
    pub accumulate: ClassLevel,
}

/// A spec whose two classes share the child mix (every child `β = 0`)
/// and operand pass counts, differing only in C-side passes — the shape
/// of every compiled coefficient-table schedule, whose first write per
/// C block is a copy (not an add) exactly when the caller's `β = 0`.
pub fn uniform_spec(
    dims: (u128, u128, u128),
    rank: u128,
    a_passes: u128,
    b_passes: u128,
    c_passes_beta_zero: u128,
    c_passes_accumulate: u128,
) -> FamilySpec {
    let class = |c_passes| ClassLevel {
        children_beta_zero: rank,
        children_accumulate: 0,
        a_passes,
        b_passes,
        c_passes,
    };
    FamilySpec { dims, beta_zero: class(c_passes_beta_zero), accumulate: class(c_passes_accumulate) }
}

/// The Boyer–Dumas–Pernet–Zhou ⟨2,2,2⟩ pair (arXiv:0707.2347 / ISSAC
/// '09), as the dispatcher schedules it:
///
/// * `β = 0` runs the **two-temp** schedule — products P1, P5, P6, P7
///   land in `C` quadrants as fresh (`β = 0`) children, P2, P3, P4
///   accumulate; 4 + 4 operand stagings and 5 cross-quadrant
///   accumulation passes (13 adds total);
/// * `β ≠ 0` runs the **in-place accumulating** schedule — all seven
///   children are multiply-accumulates, with 5 + 5 operand stagings and
///   10 bracket import/export passes on `C` quadrants (20 adds total;
///   the `β` pre-scale is a multiply pass, not an add).
pub fn bdpz_spec() -> FamilySpec {
    FamilySpec {
        dims: (2, 2, 2),
        beta_zero: ClassLevel {
            children_beta_zero: 4,
            children_accumulate: 3,
            a_passes: 4,
            b_passes: 4,
            c_passes: 5,
        },
        accumulate: ClassLevel {
            children_beta_zero: 0,
            children_accumulate: 7,
            a_passes: 5,
            b_passes: 5,
            c_passes: 10,
        },
    }
}

/// Exact flop count of a two-class family recursion. Leaves cost
/// `2mkn − mn` in the `β = 0` class and `2mkn` otherwise; recursion also
/// stops when a dimension stops being divisible by its base-case unit
/// (the model, like the paper's Section 2, assumes exact splits — the
/// runtime's peel/pad residues are accounted separately).
///
/// ```
/// use opcount::family::{bdpz_spec, family_flops};
/// // One β = 0 BDPZ two-temp level on 8³ with order-4 leaves: four
/// // fresh children (2·4³ − 4²), three accumulating ones (2·4³), and
/// // 13 add passes of 4² elements.
/// let cut = |m: u128, _: u128, _: u128, _: bool| m <= 4;
/// assert_eq!(
///     family_flops(&bdpz_spec(), 8, 8, 8, true, &cut),
///     4 * (2 * 64 - 16) + 3 * (2 * 64) + 13 * 16,
/// );
/// ```
pub fn family_flops(
    spec: &FamilySpec,
    m: u128,
    k: u128,
    n: u128,
    beta_zero: bool,
    cutoff: &dyn Fn(u128, u128, u128, bool) -> bool,
) -> u128 {
    let (dm, dk, dn) = spec.dims;
    if cutoff(m, k, n, beta_zero) || m < dm || k < dk || n < dn || m % dm != 0 || k % dk != 0 || n % dn != 0 {
        return 2 * m * k * n - if beta_zero { m * n } else { 0 };
    }
    let class = if beta_zero { spec.beta_zero } else { spec.accumulate };
    let (bm, bk, bn) = (m / dm, k / dk, n / dn);
    let mut total = class.a_passes * bm * bk + class.b_passes * bk * bn + class.c_passes * bm * bn;
    if class.children_beta_zero > 0 {
        total += class.children_beta_zero * family_flops(spec, bm, bk, bn, true, cutoff);
    }
    if class.children_accumulate > 0 {
        total += class.children_accumulate * family_flops(spec, bm, bk, bn, false, cutoff);
    }
    total
}

/// Closed-form evaluation of `d` levels of a *uniform-class* rank-R
/// recursion (every child `β = 0`) on a `dm^d·m0 × dk^d·k0` by
/// `dk^d·k0 × dn^d·n0` product, standard algorithm at the bottom —
/// the generalization of the paper's eq. (3). Evaluated as an exact
/// bottom-up `u128` loop rather than a power formula, so rectangular
/// base cases need no rational arithmetic.
///
/// ```
/// use opcount::family::family_closed_form;
/// // Depth 0 is a plain β = 0 leaf: 2·m·k·n − m·n.
/// assert_eq!(family_closed_form(0, (2, 2, 2), 3, 5, 7, 7, 4, 4, 7), 2 * 3 * 5 * 7 - 3 * 7);
/// // One Winograd level on 16³ with order-8 leaves: eq. (3) at d = 1.
/// let leaf = 2u128 * 8 * 8 * 8 - 8 * 8;
/// assert_eq!(family_closed_form(1, (2, 2, 2), 8, 8, 8, 7, 4, 4, 7), 7 * leaf + 15 * 64);
/// ```
pub fn family_closed_form(
    d: u32,
    dims: (u128, u128, u128),
    m0: u128,
    k0: u128,
    n0: u128,
    rank: u128,
    a_passes: u128,
    b_passes: u128,
    c_passes: u128,
) -> u128 {
    let (dm, dk, dn) = dims;
    let mut w = 2 * m0 * k0 * n0 - m0 * n0;
    let (mut m, mut k, mut n) = (m0, k0, n0);
    for _ in 0..d {
        // At this level the children are the current (m, k, n); the add
        // passes run on child-shaped blocks.
        w = rank * w + a_passes * m * k + b_passes * k * n + c_passes * m * n;
        m *= dm;
        k *= dk;
        n *= dn;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recurrence::{winograd_closed_form, winograd_square};

    /// Eq. (2)'s 7/⟨2,2,2⟩/4-4-7 structure as a [`FamilySpec`].
    fn winograd_spec() -> FamilySpec {
        uniform_spec((2, 2, 2), 7, 4, 4, 7, 7)
    }

    #[test]
    fn closed_form_reduces_to_paper_equations() {
        for d in 0..5u32 {
            assert_eq!(family_closed_form(d, (2, 2, 2), 9, 9, 9, 7, 4, 4, 7), winograd_square(d, 9));
            assert_eq!(
                family_closed_form(d, (2, 2, 2), 3, 5, 7, 7, 4, 4, 7),
                winograd_closed_form(d, 3, 5, 7)
            );
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn flops_recurrence_matches_closed_form_for_uniform_specs() {
        // ⟨2,2,2⟩ rank 7 and a rectangular ⟨3,2,3⟩ rank 17 shape.
        let cases: [(FamilySpec, (u128, u128, u128), u128, u128, u128); 2] = [
            (winograd_spec(), (2, 2, 2), 3, 5, 7),
            (uniform_spec((3, 2, 3), 17, 12, 14, 20, 25), (3, 2, 3), 2, 3, 4),
        ];
        for (spec, (dm, dk, dn), m0, k0, n0) in cases {
            for d in 0..4u32 {
                let (m, k, n) = (dm.pow(d) * m0, dk.pow(d) * k0, dn.pow(d) * n0);
                let cut = move |a: u128, b: u128, c: u128, _: bool| a <= m0 && b <= k0 && c <= n0;
                let cl = spec.beta_zero;
                assert_eq!(
                    family_flops(&spec, m, k, n, true, &cut),
                    family_closed_form(
                        d,
                        spec.dims,
                        m0,
                        k0,
                        n0,
                        cl.children_beta_zero,
                        cl.a_passes,
                        cl.b_passes,
                        cl.c_passes
                    ),
                    "d={d}"
                );
            }
        }
    }

    #[test]
    fn bdpz_one_level_counts_by_hand() {
        let spec = bdpz_spec();
        let t = 4u128; // leaf order
        let cut = move |a: u128, _: u128, _: u128, _: bool| a <= t;
        // β = 0: 4 fresh + 3 accumulate leaves, 13 add passes of t².
        let leaf_bz = 2 * t * t * t - t * t;
        let leaf_acc = 2 * t * t * t;
        assert_eq!(
            family_flops(&spec, 2 * t, 2 * t, 2 * t, true, &cut),
            4 * leaf_bz + 3 * leaf_acc + 13 * t * t
        );
        // β ≠ 0: 7 accumulate leaves, 20 add passes.
        assert_eq!(family_flops(&spec, 2 * t, 2 * t, 2 * t, false, &cut), 7 * leaf_acc + 20 * t * t);
    }

    #[test]
    fn bdpz_add_overhead_exceeds_winograds() {
        // The BDPZ schedules trade adds for memory: at equal depth their
        // flop count is never below the classic Winograd recursion's.
        let cut = |a: u128, _: u128, _: u128, _: bool| a <= 8;
        for &m in &[16u128, 32, 64, 128] {
            let bdpz = family_flops(&bdpz_spec(), m, m, m, true, &cut);
            let wino = family_flops(&winograd_spec(), m, m, m, true, &cut);
            assert!(bdpz >= wino, "m={m}: {bdpz} < {wino}");
        }
    }

    #[test]
    fn indivisible_dimensions_stop_the_model() {
        // ⟨3,2,3⟩ on 6×6×6: one exact split to 2×3×2 children, whose
        // m = 2 < dm = 3 stops the next level even with no cutoff.
        let spec = uniform_spec((3, 2, 3), 17, 2, 2, 17, 17);
        let cut = |_: u128, _: u128, _: u128, _: bool| false;
        let child = 2 * 2 * 3 * 2 - 2 * 2; // leaf 2×3×2, β = 0
        assert_eq!(
            family_flops(&spec, 6, 6, 6, true, &cut),
            17 * child + 2 * (2 * 3) + 2 * (3 * 2) + 17 * (2 * 2)
        );
    }
}
