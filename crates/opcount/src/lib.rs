//! Operation-count and memory models from Section 2 of
//! Huss-Lederman et al., *Implementation of Strassen's Algorithm for
//! Matrix Multiplication* (SC '96).
//!
//! This crate is pure analysis — no matrices are multiplied. It encodes:
//!
//! * [`model`] — the op-count cost model `M(m,k,n) = 2mkn − mn`,
//!   `G(m,n) = mn`, plus a weighted-cost generalization;
//! * [`recurrence`] — the cost recurrence (eq. 2) and closed forms
//!   (eqs. 3–5) for the Winograd and original variants;
//! * [`family`] — the generalized rank-R ⟨m,k,n⟩ two-class recurrence
//!   covering compiled coefficient-table families and the BDPZ
//!   two-temp/in-place schedules;
//! * [`cutoff`] — the theoretical cutoff characterization (eqs. 6–8),
//!   including the square cutoff 12 and the 6×14×86 counterexample class;
//! * [`analysis`] — the headline percentages the paper quotes (12.5%,
//!   14.3%, 38.2%, …);
//! * [`memory`] — the Table-1 temporary-storage formulas;
//! * [`perf_model`] — execution-time models (after the companion report
//!   \[14\]) that explain why measured cutoffs are ~10-20x the theoretical 12.
//!
//! # Example
//!
//! ```
//! // The theoretical square cutoff is 12: standard multiplication is
//! // cheaper up to order 12, one level of Strassen wins from 13.
//! assert_eq!(opcount::cutoff::theoretical_square_cutoff(), 12);
//! ```

#![warn(missing_docs)]
#![allow(clippy::too_many_arguments, clippy::manual_is_multiple_of, clippy::needless_range_loop)]

pub mod analysis;
pub mod cutoff;
pub mod family;
pub mod memory;
pub mod model;
pub mod perf_model;
pub mod recurrence;
