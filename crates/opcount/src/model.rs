//! Cost models for matrix multiplication and addition.
//!
//! The paper's Section 2 works in a pure *operation count* model:
//! `M(m,k,n) = 2mkn − mn` for a standard multiply (mkn multiplications
//! plus `mkn − mn` additions) and `G(m,n) = mn` for a matrix add or
//! subtract. Its companion report \[14\] generalizes to models where
//! additions and multiplications have different unit costs; we provide
//! both behind one trait.

/// A cost model assigning abstract costs to the two primitive matrix
/// operations Strassen's recursion is built from.
pub trait CostModel {
    /// Cost of multiplying an `m x k` by a `k x n` matrix with the
    /// standard algorithm.
    fn mult(&self, m: u128, k: u128, n: u128) -> f64;
    /// Cost of adding or subtracting two `m x n` matrices.
    fn add(&self, m: u128, n: u128) -> f64;
}

/// The paper's operation-count model: every arithmetic operation costs 1.
///
/// `M(m,k,n) = 2mkn − mn`, `G(m,n) = mn`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCount;

impl CostModel for OpCount {
    #[inline]
    fn mult(&self, m: u128, k: u128, n: u128) -> f64 {
        (2 * m * k * n - m * n) as f64
    }
    #[inline]
    fn add(&self, m: u128, n: u128) -> f64 {
        (m * n) as f64
    }
}

/// Weighted model: multiplications cost `w_mul`, additions cost `w_add`.
///
/// Setting `w_add > w_mul` models machines where the O(n²) add passes are
/// bandwidth-bound and relatively expensive (the effect that pushes real
/// cutoffs far above the theoretical 12).
#[derive(Clone, Copy, Debug)]
pub struct WeightedOps {
    /// Cost of one scalar multiplication.
    pub w_mul: f64,
    /// Cost of one scalar addition/subtraction.
    pub w_add: f64,
}

impl CostModel for WeightedOps {
    #[inline]
    fn mult(&self, m: u128, k: u128, n: u128) -> f64 {
        let mults = (m * k * n) as f64;
        let adds = (m * k * n - m * n) as f64;
        self.w_mul * mults + self.w_add * adds
    }
    #[inline]
    fn add(&self, m: u128, n: u128) -> f64 {
        self.w_add * (m * n) as f64
    }
}

/// Exact integer operation count of the standard algorithm,
/// `2mkn − mn` (kept in `u128` so deep recursions never overflow).
#[inline]
pub fn standard_ops(m: u128, k: u128, n: u128) -> u128 {
    2 * m * k * n - m * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcount_matches_formula() {
        let m = OpCount;
        // 2x2x2: 8 mults + 4 adds = 12 = 2*8 - 4
        assert_eq!(m.mult(2, 2, 2), 12.0);
        assert_eq!(m.add(3, 4), 12.0);
        assert_eq!(standard_ops(2, 2, 2), 12);
    }

    #[test]
    fn square_standard_count_is_2m3_minus_m2() {
        for m in [1u128, 5, 12, 100] {
            assert_eq!(standard_ops(m, m, m), 2 * m * m * m - m * m);
        }
    }

    #[test]
    fn weighted_reduces_to_opcount_at_unit_weights() {
        let w = WeightedOps { w_mul: 1.0, w_add: 1.0 };
        let o = OpCount;
        for &(m, k, n) in &[(3u128, 4u128, 5u128), (10, 10, 10)] {
            assert_eq!(w.mult(m, k, n), o.mult(m, k, n));
            assert_eq!(w.add(m, n), o.add(m, n));
        }
    }

    #[test]
    fn expensive_adds_raise_add_cost_only_linearly() {
        let w = WeightedOps { w_mul: 1.0, w_add: 3.0 };
        assert_eq!(w.add(2, 2), 12.0);
        // mult: 8 mults + 4 adds*3 = 20
        assert_eq!(w.mult(2, 2, 2), 20.0);
    }
}
