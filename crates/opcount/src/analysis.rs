//! Derived analytic results quoted in Section 2 of the paper.
//!
//! Each function corresponds to a specific numeric claim in the text;
//! the unit tests pin those claims (12.5% one-level gain, 14.3%
//! full-recursion Winograd-vs-original gain, 38.2% cutoff benefit at
//! order 256, …) and the `analytic` experiment prints them.

use crate::recurrence::winograd_square;

/// Paper eq. (1): ratio of one-level op count (Strassen's *original*
/// 18-add construction, as in the paper's Section 2 text) to the standard
/// op count on order-`m` square matrices, `(7m³ + 11m²)/(8m³ − 4m²)`.
pub fn one_level_ratio(m: f64) -> f64 {
    (7.0 * m.powi(3) + 11.0 * m.powi(2)) / (8.0 * m.powi(3) - 4.0 * m.powi(2))
}

/// One-level ratio for the *Winograd* variant (15 adds):
/// `((7/4)m³ + 2m²)/(2m³ − m²)`. This is the quantity whose unit
/// crossing at `m = 12` yields the theoretical square cutoff of eq. (7).
pub fn one_level_ratio_winograd(m: f64) -> f64 {
    (1.75 * m.powi(3) + 2.0 * m.powi(2)) / (2.0 * m.powi(3) - m.powi(2))
}

/// Limit of [`one_level_ratio`] as `m → ∞` (the famous 7/8).
pub fn one_level_limit() -> f64 {
    7.0 / 8.0
}

/// Limit, as recursion depth `d → ∞`, of `S(2^d m0) / W(2^d m0)` —
/// original over Winograd — which the paper gives as `(5 + 2 m0)/(4 + 2 m0)`.
pub fn original_over_winograd_limit(m0: f64) -> f64 {
    (5.0 + 2.0 * m0) / (4.0 + 2.0 * m0)
}

/// Percentage improvement of Winograd over original at full depth:
/// `100 (1 − W/S)` in the `d → ∞` limit.
pub fn winograd_improvement_percent(m0: f64) -> f64 {
    100.0 * (1.0 - 1.0 / original_over_winograd_limit(m0))
}

/// Percentage improvement from stopping recursion at cutoff size `m0_cut`
/// instead of recursing to scalars, on square matrices of order
/// `2^d_full` (requires `2^d_full = 2^d_cut * m0_cut`).
///
/// The paper computes 38.2% for order 256 with cutoff 12 → `m0 = 8`
/// (the order-256 recursion with cutoff 12 bottoms out at 8).
pub fn cutoff_improvement_percent(order: u128, m0_cut: u128) -> f64 {
    assert!(order.is_power_of_two(), "claim is stated for powers of two");
    assert!(m0_cut.is_power_of_two());
    let d_full = order.trailing_zeros();
    let d_cut = (order / m0_cut).trailing_zeros();
    let full = winograd_square(d_full, 1) as f64;
    let cut = winograd_square(d_cut, m0_cut) as f64;
    100.0 * (1.0 - cut / full)
}

/// Asymptotic exponent of Strassen's algorithm, `log2 7 ≈ 2.807`.
pub fn strassen_exponent() -> f64 {
    (7.0f64).ln() / (2.0f64).ln()
}

/// Ratio of consecutive Winograd costs when the order doubles,
/// `W(2^{d+1} m0) / W(2^d m0)` — approaches 7 (paper Table 5 commentary:
/// "scaling … is very close to the theoretical factor of 7").
pub fn doubling_factor(d: u32, m0: u128) -> f64 {
    winograd_square(d + 1, m0) as f64 / winograd_square(d, m0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_level_approaches_seven_eighths() {
        assert!((one_level_limit() - 0.875).abs() < 1e-15);
        assert!((one_level_ratio(1e9) - 0.875).abs() < 1e-8);
        // 12.5% improvement for large m (paper: "a 12.5% improvement").
        assert!((100.0 * (1.0 - one_level_ratio(1e9)) - 12.5).abs() < 1e-5);
    }

    #[test]
    fn one_level_crossovers() {
        // Original variant (eq. 1): 7m + 11 = 8m − 4 ⇒ crossover at m = 15.
        assert!(one_level_ratio(14.0) > 1.0);
        assert!((one_level_ratio(15.0) - 1.0).abs() < 1e-15);
        assert!(one_level_ratio(16.0) < 1.0);
        // Winograd variant: crossover at m = 12, matching eq. (7)'s cutoff.
        assert!(one_level_ratio_winograd(11.0) > 1.0);
        assert!((one_level_ratio_winograd(12.0) - 1.0).abs() < 1e-15);
        assert!(one_level_ratio_winograd(13.0) < 1.0);
    }

    #[test]
    fn winograd_gain_is_14_3_percent_at_full_recursion() {
        // m0 = 1: S/W → 7/6, improvement 1 − 6/7 = 14.285…%
        assert!((original_over_winograd_limit(1.0) - 7.0 / 6.0).abs() < 1e-15);
        assert!((winograd_improvement_percent(1.0) - 100.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn winograd_gain_range_for_cutoff_12() {
        // Paper: between 5.26% and 3.45% as m0 ranges 7..12.
        assert!((winograd_improvement_percent(7.0) - 100.0 * (1.0 - 18.0 / 19.0)).abs() < 1e-12);
        assert!((winograd_improvement_percent(7.0) - 5.26).abs() < 0.01);
        assert!((winograd_improvement_percent(12.0) - 3.45).abs() < 0.01);
    }

    #[test]
    fn cutoff_benefit_at_256_is_38_2_percent() {
        let got = cutoff_improvement_percent(256, 8);
        assert!((got - 38.2).abs() < 0.05, "got {got}");
    }

    #[test]
    fn exponent_matches_paper() {
        assert!((strassen_exponent() - 2.807).abs() < 5e-4);
    }

    #[test]
    fn doubling_factor_tends_to_seven() {
        assert!((doubling_factor(12, 8) - 7.0).abs() < 0.01);
        // Depths ≥ 1 are within 10% of 7 (paper Table 5 comment); the very
        // first doubling overshoots (ratio 8) because the add terms are
        // still a large fraction of the work.
        assert!((doubling_factor(0, 8) - 8.0).abs() < 0.01);
        for d in 1..5 {
            let f = doubling_factor(d, 8);
            assert!((f - 7.0).abs() / 7.0 < 0.10, "d={d} factor={f}");
        }
    }
}
