//! Theoretical cutoff characterization — paper eqs. (6)–(8).
//!
//! Under the operation-count model, one level of Winograd recursion on an
//! `(m, k, n)` product beats the standard algorithm iff
//! `mkn > 4(mk + kn + mn)` — equivalently `1 > 4(1/n + 1/m + 1/k)`.
//! The square case collapses to `m > 12`.

/// Paper eq. (7): `true` when the *standard* algorithm is at most as
/// costly as one level of Strassen recursion, i.e. recursion does not pay.
#[inline]
pub fn standard_preferred(m: u128, k: u128, n: u128) -> bool {
    m * k * n <= 4 * (m * k + k * n + m * n)
}

/// Paper eq. (8): the same condition in reciprocal form, usable for
/// non-integer reasoning.
#[inline]
pub fn standard_preferred_reciprocal(m: f64, k: f64, n: f64) -> bool {
    1.0 <= 4.0 * (1.0 / n + 1.0 / m + 1.0 / k)
}

/// The theoretical square cutoff: the largest `m` for which the standard
/// algorithm is preferred on an `m x m x m` product. The paper derives 12.
pub fn theoretical_square_cutoff() -> u128 {
    let mut m = 1;
    while standard_preferred(m + 1, m + 1, m + 1) {
        m += 1;
    }
    m
}

/// Exhaustively enumerate the integer shapes with all dims in
/// `1..=bound` where recursion pays even though `min(m,k,n) <= 12` —
/// the class of counterexamples (like the paper's 6×14×86) that motivates
/// rectangular cutoff criteria beyond eq. (11).
pub fn small_dim_recursion_wins(bound: u128) -> Vec<(u128, u128, u128)> {
    let mut out = Vec::new();
    for m in 1..=bound {
        for k in 1..=bound {
            for n in 1..=bound {
                if m.min(k).min(n) <= 12 && !standard_preferred(m, k, n) {
                    out.push((m, k, n));
                }
            }
        }
    }
    out
}

/// One level of Winograd recursion cost under the op-count model (the RHS
/// of eq. (6)): `7 M(m/2,k/2,n/2) + 4G(m/2,k/2) + 4G(k/2,n/2) + 7G(m/2,n/2)`.
pub fn one_level_cost(m: u128, k: u128, n: u128) -> f64 {
    assert!(m % 2 == 0 && k % 2 == 0 && n % 2 == 0, "one_level_cost needs even dims");
    let (m2, k2, n2) = (m / 2, k / 2, n / 2);
    7.0 * (2 * m2 * k2 * n2 - m2 * n2) as f64 + (4 * m2 * k2 + 4 * k2 * n2 + 7 * m2 * n2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::standard_ops;

    #[test]
    fn square_cutoff_is_twelve() {
        assert_eq!(theoretical_square_cutoff(), 12);
        assert!(standard_preferred(12, 12, 12));
        assert!(!standard_preferred(13, 13, 13));
    }

    #[test]
    fn papers_rectangular_example() {
        // m=6, k=14, n=86: (7) is NOT satisfied, recursion should be used
        // even though m < 12 (paper §2).
        assert!(!standard_preferred(6, 14, 86));
        // …and indeed one level is cheaper than standard by the op count.
        assert!(one_level_cost(6, 14, 86) < standard_ops(6, 14, 86) as f64);
    }

    #[test]
    fn integer_and_reciprocal_forms_agree() {
        for m in 1..30u128 {
            for k in (1..60u128).step_by(7) {
                for n in (1..120u128).step_by(11) {
                    assert_eq!(
                        standard_preferred(m, k, n),
                        standard_preferred_reciprocal(m as f64, k as f64, n as f64),
                        "({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_boundary_cases() {
        // The (7) inequality at equality counts as "standard preferred".
        // m=k=n=12: 12³ = 1728, 4*3*144 = 1728.
        assert_eq!(12u128 * 12 * 12, 4 * 3 * 12 * 12);
        assert!(standard_preferred(12, 12, 12));
    }

    #[test]
    fn small_dim_wins_exist_and_include_papers_family() {
        let wins = small_dim_recursion_wins(90);
        assert!(wins.contains(&(6, 14, 86)));
        // Every reported triple must genuinely violate (7).
        for &(m, k, n) in wins.iter().take(50) {
            assert!(!standard_preferred(m, k, n));
            assert!(m.min(k).min(n) <= 12);
        }
    }

    #[test]
    fn one_level_cost_crosses_standard_at_cutoff() {
        // For even square orders: recursion wins strictly above 12.
        for m in (2..=12u128).step_by(2) {
            assert!(one_level_cost(m, m, m) >= standard_ops(m, m, m) as f64, "m={m}");
        }
        for m in (14..=64u128).step_by(2) {
            assert!(one_level_cost(m, m, m) < standard_ops(m, m, m) as f64, "m={m}");
        }
    }
}
