//! Execution-time models (after the paper's companion report \[14\]).
//!
//! The pure operation-count model predicts a square cutoff of 12;
//! measured cutoffs are an order of magnitude larger because the O(n²)
//! add passes run at memory bandwidth while a good GEMM runs at
//! arithmetic throughput, and every GEMM call carries fixed overhead.
//! [`TimeModel`] captures exactly those three effects and is enough to
//! predict where the real crossover lands — the role the companion
//! report's models played for the paper.

/// Three-parameter execution-time model:
/// `t_gemm(m,k,n) = overhead + mul_rate · 2mkn`,
/// `t_add(m,n)    = add_rate · mn`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeModel {
    /// Seconds per floating-point operation inside GEMM.
    pub mul_rate: f64,
    /// Seconds per element of an elementwise add/subtract pass.
    pub add_rate: f64,
    /// Fixed seconds per GEMM invocation.
    pub overhead: f64,
}

impl TimeModel {
    /// Predicted time of one conventional `(m, k, n)` multiply.
    pub fn gemm_time(&self, m: f64, k: f64, n: f64) -> f64 {
        self.overhead + self.mul_rate * 2.0 * m * k * n
    }

    /// Predicted time of one `m × n` add/subtract pass.
    pub fn add_time(&self, m: f64, n: f64) -> f64 {
        self.add_rate * m * n
    }

    /// Predicted time of one level of Winograd recursion on `(m, k, n)`
    /// (7 half-size GEMMs + 15 half-size add passes, 4+4+7 shaped).
    pub fn one_level_time(&self, m: f64, k: f64, n: f64) -> f64 {
        let (m2, k2, n2) = (m / 2.0, k / 2.0, n / 2.0);
        7.0 * self.gemm_time(m2, k2, n2)
            + 4.0 * self.add_time(m2, k2)
            + 4.0 * self.add_time(k2, n2)
            + 7.0 * self.add_time(m2, n2)
    }

    /// Predicted full-recursion Winograd time under a square cutoff.
    pub fn winograd_time(&self, m: f64, k: f64, n: f64, tau: f64) -> f64 {
        if m <= tau || k <= tau || n <= tau || m < 4.0 {
            return self.gemm_time(m, k, n);
        }
        let (m2, k2, n2) = (m / 2.0, k / 2.0, n / 2.0);
        7.0 * self.winograd_time(m2, k2, n2, tau)
            + 4.0 * self.add_time(m2, k2)
            + 4.0 * self.add_time(k2, n2)
            + 7.0 * self.add_time(m2, n2)
    }

    /// Smallest even square order (≤ `max`) at which one Strassen level
    /// beats the plain GEMM — the model's crossover prediction.
    pub fn predicted_square_crossover(&self, max: usize) -> Option<usize> {
        (4..=max).step_by(2).find(|&m| {
            let mf = m as f64;
            self.one_level_time(mf, mf, mf) < self.gemm_time(mf, mf, mf)
        })
    }

    /// With zero overhead and `add_rate = mul_rate`, the model degenerates
    /// to the op-count model whose crossover is 12; this constructor
    /// builds that limit for tests and comparisons.
    pub fn op_count_limit() -> Self {
        Self { mul_rate: 1.0, add_rate: 1.0, overhead: 0.0 }
    }
}

/// Least-squares fit of `t = overhead + mul_rate · flops` from GEMM
/// timing samples `(m, k, n, seconds)`, plus a direct estimate of
/// `add_rate` from add-pass samples `(m, n, seconds)`.
///
/// Returns `None` with fewer than two GEMM samples or one add sample.
pub fn fit(
    gemm_samples: &[(usize, usize, usize, f64)],
    add_samples: &[(usize, usize, f64)],
) -> Option<TimeModel> {
    if gemm_samples.len() < 2 || add_samples.is_empty() {
        return None;
    }
    // Linear regression t = a + b x with x = 2mkn.
    let n = gemm_samples.len() as f64;
    let xs: Vec<f64> = gemm_samples.iter().map(|&(m, k, nn, _)| 2.0 * (m * k * nn) as f64).collect();
    let ts: Vec<f64> = gemm_samples.iter().map(|&(_, _, _, t)| t).collect();
    let sx: f64 = xs.iter().sum();
    let st: f64 = ts.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxt: f64 = xs.iter().zip(&ts).map(|(x, t)| x * t).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::MIN_POSITIVE {
        return None;
    }
    let mul_rate = (n * sxt - sx * st) / denom;
    let overhead = ((st - mul_rate * sx) / n).max(0.0);

    // add_rate: mean of t / (mn).
    let add_rate =
        add_samples.iter().map(|&(m, nn, t)| t / (m * nn) as f64).sum::<f64>() / add_samples.len() as f64;

    Some(TimeModel { mul_rate: mul_rate.max(0.0), add_rate: add_rate.max(0.0), overhead })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_limit_crosses_near_twelve() {
        // With unit costs the model's crossover condition is
        // (7/4)m³ + (15/4)m² < 2m³ ⇔ m > 15 — the same order as the
        // paper's 12 (the difference: this model charges 2mkn flops per
        // GEMM instead of the exact 2mkn − mn).
        let m = TimeModel::op_count_limit();
        assert_eq!(m.predicted_square_crossover(100), Some(16));
    }

    #[test]
    fn expensive_adds_push_crossover_up() {
        let cheap = TimeModel { mul_rate: 1.0, add_rate: 1.0, overhead: 0.0 };
        let pricey = TimeModel { mul_rate: 1.0, add_rate: 16.0, overhead: 0.0 };
        let c1 = cheap.predicted_square_crossover(4000).unwrap();
        let c2 = pricey.predicted_square_crossover(4000).unwrap();
        assert!(c2 > 8 * c1, "adds 16x pricier should push crossover ~16x: {c1} -> {c2}");
    }

    #[test]
    fn call_overhead_pushes_crossover_up() {
        let none = TimeModel { mul_rate: 1.0, add_rate: 1.0, overhead: 0.0 };
        let some = TimeModel { mul_rate: 1.0, add_rate: 1.0, overhead: 1e5 };
        // 7 sub-calls pay 7x overhead vs 1x: recursion needs bigger m.
        assert!(
            some.predicted_square_crossover(4000).unwrap() > none.predicted_square_crossover(4000).unwrap()
        );
    }

    #[test]
    fn fit_recovers_synthetic_parameters() {
        let truth = TimeModel { mul_rate: 3e-10, add_rate: 2e-9, overhead: 5e-6 };
        let gemm: Vec<(usize, usize, usize, f64)> = [64usize, 128, 192, 256, 320]
            .iter()
            .map(|&m| (m, m, m, truth.gemm_time(m as f64, m as f64, m as f64)))
            .collect();
        let adds: Vec<(usize, usize, f64)> =
            [64usize, 128, 256].iter().map(|&m| (m, m, truth.add_time(m as f64, m as f64))).collect();
        let fitted = fit(&gemm, &adds).unwrap();
        assert!((fitted.mul_rate - truth.mul_rate).abs() / truth.mul_rate < 1e-6);
        assert!((fitted.add_rate - truth.add_rate).abs() / truth.add_rate < 1e-6);
        assert!((fitted.overhead - truth.overhead).abs() / truth.overhead < 1e-3);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit(&[], &[(2, 2, 1.0)]).is_none());
        assert!(fit(&[(8, 8, 8, 1.0)], &[(2, 2, 1.0)]).is_none());
        // Identical x values make the regression singular.
        assert!(fit(&[(8, 8, 8, 1.0), (8, 8, 8, 1.1)], &[(2, 2, 1.0)]).is_none());
    }

    #[test]
    fn winograd_time_matches_one_level_at_depth_one() {
        let m = TimeModel { mul_rate: 1e-9, add_rate: 4e-9, overhead: 1e-6 };
        // tau chosen so exactly one level happens for order 64.
        let full = m.winograd_time(64.0, 64.0, 64.0, 32.0);
        let one = m.one_level_time(64.0, 64.0, 64.0);
        assert!((full - one).abs() < 1e-15);
    }

    #[test]
    fn recursion_saves_time_for_large_orders() {
        let m = TimeModel { mul_rate: 1e-9, add_rate: 4e-9, overhead: 1e-6 };
        let cross = m.predicted_square_crossover(100_000).unwrap() as f64;
        let big = 8.0 * cross;
        assert!(m.winograd_time(big, big, big, cross) < m.gemm_time(big, big, big));
    }
}
