//! Temporary-memory requirement formulas — paper Table 1 and Section 3.2.
//!
//! All quantities are in *elements* (multiply by `size_of::<T>()` for
//! bytes) and describe the extra storage beyond `A`, `B`, and `C`.

/// The Strassen implementations whose memory footprints Table 1 compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Implementation {
    /// CRAY `SGEMMS` (Bailey's scheme, Strassen's original variant).
    CraySgemms,
    /// IBM ESSL `DGEMMS` (multiply-only interface).
    IbmDgemms,
    /// Douglas et al. `DGEMMW`.
    Dgemmw,
    /// The paper's STRASSEN1 schedule.
    Strassen1,
    /// The paper's STRASSEN2 schedule.
    Strassen2,
    /// The paper's combined routine (STRASSEN1 when `β = 0`, else STRASSEN2).
    Dgefmm,
}

/// Table 1: temporary elements needed to multiply order-`m` square
/// matrices; `None` where the implementation does not support the case.
pub fn square_temp_elements(imp: Implementation, m: u128, beta_zero: bool) -> Option<f64> {
    let m2 = (m * m) as f64;
    Some(match (imp, beta_zero) {
        (Implementation::CraySgemms, _) => 7.0 * m2 / 3.0,
        (Implementation::IbmDgemms, true) => 1.40 * m2,
        (Implementation::IbmDgemms, false) => return None, // not directly supported
        (Implementation::Dgemmw, true) => 2.0 * m2 / 3.0,
        (Implementation::Dgemmw, false) => 5.0 * m2 / 3.0,
        (Implementation::Strassen1, true) => 2.0 * m2 / 3.0,
        (Implementation::Strassen1, false) => 2.0 * m2,
        (Implementation::Strassen2, _) => m2,
        (Implementation::Dgefmm, true) => 2.0 * m2 / 3.0,
        (Implementation::Dgefmm, false) => m2,
    })
}

/// STRASSEN1 rectangular bound (Section 3.2): `(4mn + m·max(k,n) + kn)/3`
/// in general, `(m·max(k,n) + kn)/3` when `β = 0`.
pub fn strassen1_bound(m: u128, k: u128, n: u128, beta_zero: bool) -> f64 {
    let mx = m * k.max(n);
    if beta_zero {
        ((mx + k * n) as f64) / 3.0
    } else {
        ((4 * m * n + mx + k * n) as f64) / 3.0
    }
}

/// STRASSEN2 rectangular bound (Section 3.2): `(mk + kn + mn)/3`.
pub fn strassen2_bound(m: u128, k: u128, n: u128) -> f64 {
    ((m * k + k * n + m * n) as f64) / 3.0
}

/// DGEFMM bound: STRASSEN1's `β = 0` bound or STRASSEN2's general bound.
pub fn dgefmm_bound(m: u128, k: u128, n: u128, beta_zero: bool) -> f64 {
    if beta_zero {
        strassen1_bound(m, k, n, true)
    } else {
        strassen2_bound(m, k, n)
    }
}

/// One *level* of STRASSEN2's temporaries: `R1 (mk/4) + R2 (kn/4) + R3 (mn/4)`.
pub fn strassen2_per_level(m: u128, k: u128, n: u128) -> u128 {
    (m / 2) * (k / 2) + (k / 2) * (n / 2) + (m / 2) * (n / 2)
}

/// Boyer–Dumas–Pernet–Zhou two-temp/in-place recursion-total bound:
/// only the operand temporaries `X (mk/4)` and `Y (kn/4)` per level,
/// summing geometrically to `(mk + kn)/3` — below every Table 1 entry,
/// including STRASSEN2's `(mk + kn + mn)/3` minimum among the paper's
/// general-β schedules.
///
/// ```
/// // Square: 2m²/3 — Table 1's best β = 0 number, but valid for any β.
/// assert_eq!(opcount::memory::bdpz_bound(300, 300, 300), 2.0 * 300.0 * 300.0 / 3.0);
/// ```
pub fn bdpz_bound(m: u128, k: u128, n: u128) -> f64 {
    ((m * k + k * n) as f64) / 3.0
}

/// Recursion-total workspace bound of a compiled rank-R ⟨dm,dk,dn⟩
/// family schedule: per level it draws `X (mk/(dm·dk))` (only when some
/// product sums more than one A block), `Y (kn/(dk·dn))` (likewise for
/// B), and the product buffer `P (mn/(dm·dn))`; each shrinks by its
/// block-count factor per level, so the totals are the geometric sums
/// `mk/(dm·dk − 1)`, `kn/(dk·dn − 1)`, `mn/(dm·dn − 1)`.
///
/// ```
/// use opcount::memory::{family_bound, strassen2_bound};
/// // ⟨2,2,2⟩ with both operand temps is exactly STRASSEN2's bound.
/// let f222 = family_bound(512, 384, 640, (2, 2, 2), true, true);
/// let s2 = strassen2_bound(512, 384, 640);
/// assert!((f222 - s2).abs() <= 1e-9 * s2);
/// // A ⟨3,3,3⟩ base case shrinks every term: (mk + kn + mn)/8.
/// assert!(family_bound(512, 384, 640, (3, 3, 3), true, true) < s2);
/// ```
pub fn family_bound(
    m: u128,
    k: u128,
    n: u128,
    dims: (u128, u128, u128),
    needs_x: bool,
    needs_y: bool,
) -> f64 {
    let (dm, dk, dn) = dims;
    let x = if needs_x { (m * k) as f64 / (dm * dk - 1) as f64 } else { 0.0 };
    let y = if needs_y { (k * n) as f64 / (dk * dn - 1) as f64 } else { 0.0 };
    x + y + (m * n) as f64 / (dm * dn - 1) as f64
}

/// A naive no-reuse implementation's bound (Section 3.2 intro):
/// `(4mk + 4kn + 14mn)/3`.
pub fn naive_bound(m: u128, k: u128, n: u128) -> f64 {
    ((4 * m * k + 4 * k * n + 14 * m * n) as f64) / 3.0
}

/// Percentage reduction of `ours` relative to `theirs` (paper's
/// "reduced by 40 to more than 70 percent" comparisons).
pub fn reduction_percent(ours: f64, theirs: f64) -> f64 {
    100.0 * (1.0 - ours / theirs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Implementation::*;

    #[test]
    fn table1_square_entries() {
        let m = 300u128;
        let m2 = (m * m) as f64;
        assert_eq!(square_temp_elements(CraySgemms, m, true), Some(7.0 * m2 / 3.0));
        assert_eq!(square_temp_elements(IbmDgemms, m, true), Some(1.40 * m2));
        assert_eq!(square_temp_elements(IbmDgemms, m, false), None);
        assert_eq!(square_temp_elements(Dgemmw, m, false), Some(5.0 * m2 / 3.0));
        assert_eq!(square_temp_elements(Strassen2, m, false), Some(m2));
        assert_eq!(square_temp_elements(Dgefmm, m, true), Some(2.0 * m2 / 3.0));
        assert_eq!(square_temp_elements(Dgefmm, m, false), Some(m2));
    }

    #[test]
    fn rectangular_bounds_specialize_to_square() {
        let m = 64u128;
        assert_eq!(strassen1_bound(m, m, m, true), 2.0 * (m * m) as f64 / 3.0);
        assert_eq!(strassen2_bound(m, m, m), (m * m) as f64);
        // STRASSEN1 general: (4m² + m² + m²)/3 = 2m².
        assert_eq!(strassen1_bound(m, m, m, false), 2.0 * (m * m) as f64);
    }

    #[test]
    fn paper_reduction_claims() {
        let m = 1000u128;
        // β≠0: DGEFMM m² vs DGEMMW 5m²/3 → 40% reduction …
        let ours = square_temp_elements(Dgefmm, m, false).unwrap();
        let w = square_temp_elements(Dgemmw, m, false).unwrap();
        assert!((reduction_percent(ours, w) - 40.0).abs() < 1e-9);
        // … and vs CRAY 7m²/3 → ~57%.
        let cray = square_temp_elements(CraySgemms, m, false).unwrap();
        assert!((reduction_percent(ours, cray) - 400.0 / 7.0).abs() < 1e-9);
        // β=0: 2m²/3 vs CRAY 7m²/3 → > 70%.
        let ours0 = square_temp_elements(Dgefmm, m, true).unwrap();
        assert!(reduction_percent(ours0, cray) > 70.0);
    }

    #[test]
    fn per_level_sums_to_geometric_bound() {
        // Σ_{i≥1} per_level(m/2^{i-1}) = bound (geometric 1/4 factor).
        let (m, k, n) = (1024u128, 1024, 1024);
        let mut total = 0.0;
        let (mut mm, mut kk, mut nn) = (m, k, n);
        while mm >= 2 && kk >= 2 && nn >= 2 {
            total += strassen2_per_level(mm, kk, nn) as f64;
            mm /= 2;
            kk /= 2;
            nn /= 2;
        }
        let bound = strassen2_bound(m, k, n);
        assert!(total <= bound, "{total} > {bound}");
        assert!(total > 0.99 * bound);
    }

    #[test]
    fn bdpz_bound_undercuts_every_table1_schedule() {
        let (m, k, n) = (600u128, 600, 600);
        let bdpz = bdpz_bound(m, k, n);
        assert!(bdpz < strassen2_bound(m, k, n));
        // Square specialization: 2m²/3, tied with STRASSEN1's β=0 bound
        // but valid for *any* β.
        assert!(bdpz <= strassen1_bound(m, k, n, true));
        assert_eq!(bdpz, 2.0 * (m * m) as f64 / 3.0);
    }

    #[test]
    fn family_bound_generalizes_strassen2() {
        // ⟨2,2,2⟩ with both operand temps is exactly STRASSEN2's
        // (mk + kn + mn)/3.
        let (m, k, n) = (512u128, 384, 640);
        let f222 = family_bound(m, k, n, (2, 2, 2), true, true);
        let s2 = strassen2_bound(m, k, n);
        assert!((f222 - s2).abs() <= 1e-9 * s2, "{f222} vs {s2}");
        // Bigger base cases shrink per-level blocks faster: a ⟨3,3,3⟩
        // family is bounded by (mk + kn + mn)/8.
        let f333 = family_bound(m, k, n, (3, 3, 3), true, true);
        assert_eq!(f333, (m * k + k * n + m * n) as f64 / 8.0);
        assert!(f333 < strassen2_bound(m, k, n));
    }

    #[test]
    fn family_bound_drops_unneeded_operand_temps() {
        let (m, k, n) = (100u128, 100, 100);
        let full = family_bound(m, k, n, (2, 2, 2), true, true);
        let no_x = family_bound(m, k, n, (2, 2, 2), false, true);
        let want = (m * k) as f64 / 3.0;
        assert!((full - no_x - want).abs() <= 1e-9 * want);
    }

    #[test]
    fn naive_bound_dwarfs_reused_bounds() {
        let (m, k, n) = (512u128, 512, 512);
        assert!(naive_bound(m, k, n) > 5.0 * strassen2_bound(m, k, n));
    }
}
