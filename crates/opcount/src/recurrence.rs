//! The cost recurrence (paper eq. (2)) and its closed forms (3)–(5).

use crate::model::CostModel;

/// Evaluate the Strassen–Winograd cost recurrence, paper eq. (2):
///
/// ```text
/// W(m,k,n) = M(m,k,n)                                   if cutoff(m,k,n)
///          = 7 W(m/2,k/2,n/2) + 4G(m/2,k/2) + 4G(k/2,n/2) + 7G(m/2,n/2)
/// ```
///
/// Recursion also stops when any dimension is odd or would reach zero
/// (the model, like the paper's Section 2, assumes even splits).
pub fn winograd_cost<M: CostModel>(
    model: &M,
    m: u128,
    k: u128,
    n: u128,
    cutoff: &dyn Fn(u128, u128, u128) -> bool,
) -> f64 {
    if cutoff(m, k, n) || m < 2 || k < 2 || n < 2 || m % 2 != 0 || k % 2 != 0 || n % 2 != 0 {
        return model.mult(m, k, n);
    }
    let (m2, k2, n2) = (m / 2, k / 2, n / 2);
    7.0 * winograd_cost(model, m2, k2, n2, cutoff)
        + 4.0 * model.add(m2, k2)
        + 4.0 * model.add(k2, n2)
        + 7.0 * model.add(m2, n2)
}

/// Same recurrence for Strassen's *original* construction
/// (7 multiplies, 18 additions: 5 on A-operands, 5 on B-operands, 8 on C).
pub fn original_cost<M: CostModel>(
    model: &M,
    m: u128,
    k: u128,
    n: u128,
    cutoff: &dyn Fn(u128, u128, u128) -> bool,
) -> f64 {
    if cutoff(m, k, n) || m < 2 || k < 2 || n < 2 || m % 2 != 0 || k % 2 != 0 || n % 2 != 0 {
        return model.mult(m, k, n);
    }
    let (m2, k2, n2) = (m / 2, k / 2, n / 2);
    7.0 * original_cost(model, m2, k2, n2, cutoff)
        + 5.0 * model.add(m2, k2)
        + 5.0 * model.add(k2, n2)
        + 8.0 * model.add(m2, n2)
}

/// Closed form (3): operation count of `d` levels of Winograd recursion on
/// a `2^d m0 x 2^d k0` by `2^d k0 x 2^d n0` product, standard algorithm at
/// the bottom.
pub fn winograd_closed_form(d: u32, m0: u128, k0: u128, n0: u128) -> u128 {
    let p7 = 7u128.pow(d);
    let p4 = 4u128.pow(d);
    p7 * (2 * m0 * k0 * n0 - m0 * n0) + (p7 - p4) * (4 * m0 * k0 + 4 * k0 * n0 + 7 * m0 * n0) / 3
}

/// Closed form (4): square specialization of (3),
/// `W(2^d m0) = 7^d (2 m0³ − m0²) + 5 m0² (7^d − 4^d)`.
pub fn winograd_square(d: u32, m0: u128) -> u128 {
    let p7 = 7u128.pow(d);
    let p4 = 4u128.pow(d);
    p7 * (2 * m0 * m0 * m0 - m0 * m0) + 5 * m0 * m0 * (p7 - p4)
}

/// Closed form (5): Strassen's original variant on square matrices,
/// `S(2^d m0) = 7^d (2 m0³ − m0²) + 6 m0² (7^d − 4^d)`.
pub fn original_square(d: u32, m0: u128) -> u128 {
    let p7 = 7u128.pow(d);
    let p4 = 4u128.pow(d);
    p7 * (2 * m0 * m0 * m0 - m0 * m0) + 6 * m0 * m0 * (p7 - p4)
}

/// Number of recursion levels a square order-`m` multiply performs under
/// square cutoff `tau` (recursion while the current order is even and
/// exceeds `tau`). This is what makes "τ+1, 2τ+2, 4τ+4, …" the smallest
/// orders that do 1, 2, 3, … recursions (paper Table 5).
pub fn recursion_depth(mut m: u128, tau: u128) -> u32 {
    let mut d = 0;
    while m > tau && m % 2 == 0 {
        m /= 2;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{standard_ops, OpCount};

    #[test]
    fn recurrence_matches_closed_form_square() {
        // Stop exactly at m0 by cutting off at size <= m0.
        for d in 0..5u32 {
            for m0 in [1u128, 3, 8, 12] {
                let m = (1u128 << d) * m0;
                let cut = move |a: u128, _: u128, _: u128| a <= m0;
                let rec = winograd_cost(&OpCount, m, m, m, &cut);
                assert_eq!(rec as u128, winograd_square(d, m0), "d={d} m0={m0}");
            }
        }
    }

    #[test]
    fn recurrence_matches_closed_form_rect() {
        for d in 0..4u32 {
            let (m0, k0, n0) = (3u128, 5u128, 7u128);
            let s = 1u128 << d;
            let cut = move |a: u128, b: u128, c: u128| a <= m0 && b <= k0 && c <= n0;
            let rec = winograd_cost(&OpCount, s * m0, s * k0, s * n0, &cut);
            assert_eq!(rec as u128, winograd_closed_form(d, m0, k0, n0), "d={d}");
        }
    }

    #[test]
    fn original_matches_its_closed_form() {
        for d in 0..5u32 {
            let m0 = 4u128;
            let m = (1u128 << d) * m0;
            let cut = move |a: u128, _: u128, _: u128| a <= m0;
            let rec = original_cost(&OpCount, m, m, m, &cut);
            assert_eq!(rec as u128, original_square(d, m0), "d={d}");
        }
    }

    #[test]
    fn zero_levels_is_standard_count() {
        assert_eq!(winograd_closed_form(0, 5, 6, 7), standard_ops(5, 6, 7));
        assert_eq!(winograd_square(0, 9), standard_ops(9, 9, 9));
        assert_eq!(original_square(0, 9), standard_ops(9, 9, 9));
    }

    #[test]
    fn winograd_beats_original_for_all_depths() {
        // Their difference is m0²(7^d − 4^d) > 0 for d ≥ 1 (paper §2).
        for d in 1..8u32 {
            for m0 in [1u128, 2, 7, 12] {
                let diff = original_square(d, m0) - winograd_square(d, m0);
                assert_eq!(diff, m0 * m0 * (7u128.pow(d) - 4u128.pow(d)));
            }
        }
    }

    #[test]
    fn one_level_count_matches_section2_text() {
        // Paper §2 computes one level of *Strassen's original* 18-add
        // construction: 7(2(m/2)³ − (m/2)²) + 18(m/2)² = (7/4)m³ + (11/4)m².
        let m = 8u128;
        let cut = move |a: u128, _: u128, _: u128| a <= m / 2;
        let got = original_cost(&OpCount, m, m, m, &cut);
        let expect = 7.0 / 4.0 * (m as f64).powi(3) + 11.0 / 4.0 * (m as f64).powi(2);
        assert_eq!(got, expect);
        // The Winograd variant's 15 adds give (7/4)m³ + 2m² instead.
        let gotw = winograd_cost(&OpCount, m, m, m, &cut);
        assert_eq!(gotw, 7.0 / 4.0 * (m as f64).powi(3) + 2.0 * (m as f64).powi(2));
    }

    #[test]
    fn recursion_depth_table5_sizes() {
        let tau = 199u128; // RS/6000 square cutoff from the paper
        assert_eq!(recursion_depth(tau + 1, tau), 1);
        assert_eq!(recursion_depth(2 * tau + 2, tau), 2);
        assert_eq!(recursion_depth(4 * tau + 4, tau), 3);
        assert_eq!(recursion_depth(8 * tau + 8, tau), 4);
        assert_eq!(recursion_depth(tau, tau), 0);
    }

    #[test]
    fn odd_dimensions_stop_recursion_in_model() {
        // 14 = 2*7: one even split then odd stops it.
        let cut = |_: u128, _: u128, _: u128| false;
        let got = winograd_cost(&OpCount, 14, 14, 14, &cut);
        let expect = 7.0 * standard_ops(7, 7, 7) as f64 + (15 * 7 * 7) as f64;
        assert_eq!(got, expect);
    }
}
