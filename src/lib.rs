//! # strassen-repro
//!
//! A Rust reproduction of Huss-Lederman, Jacobson, Johnson, Tsao &
//! Turnbull, *Implementation of Strassen's Algorithm for Matrix
//! Multiplication* (SC '96) — the PRISM **DGEFMM** paper.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`matrix`] — column-major storage and BLAS-style views;
//! * [`blas`] — the from-scratch BLAS subset (levels 1–3);
//! * [`strassen`] — DGEFMM itself: Winograd-variant Strassen with the
//!   STRASSEN1/STRASSEN2 low-memory schedules, dynamic peeling, and the
//!   parameterized hybrid cutoff criterion;
//! * [`opcount`] — Section 2's operation-count and memory models;
//! * [`eigen`] — the ISDA symmetric eigensolver application;
//! * [`serve`] — DGEFMM as a service: the shape-bucketed batched
//!   serving layer with admission control and a persistent autotune
//!   cache (see the README's "Serving" quickstart).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use matrix::random;
//! use strassen::multiply;
//!
//! let a = random::uniform::<f64>(64, 64, 1);
//! let b = random::uniform::<f64>(64, 64, 2);
//! let c = multiply(&a, &b); // Strassen under the hood
//! assert_eq!(c.nrows(), 64);
//! ```

pub use blas;
pub use eigen;
pub use matrix;
pub use opcount;
pub use serve;
pub use strassen;
