//! Measured numerical error vs. the Higham envelope, against the
//! compensated oracle — the data behind EXPERIMENTS.md's accuracy
//! section.
//!
//! ```sh
//! cargo run --release --example accuracy_report
//! ```
//!
//! Three parts:
//!
//! 1. **Error-growth sweep** — square sizes × cutoffs × variants: the
//!    measured max-abs error of `dgefmm` against the oracle, next to the
//!    [`accuracy::theoretical_bound`] envelope and the classic-GEMM
//!    error at the same size. Shows the paper-era folklore
//!    quantitatively: Strassen loses roughly a digit at practical
//!    depths, the envelope is never violated, and smaller cutoffs
//!    (deeper recursion) trade speed for accuracy.
//! 2. **Componentwise check** — the same products through
//!    [`accuracy::compare`]: Strassen's componentwise error is orders of
//!    magnitude above its normwise error (it satisfies only normwise
//!    bounds — Higham §23.2.2), while classic GEMM keeps both small.
//! 3. **A pinned fuzz campaign** — `FUZZ_ITERS` cases (default 64) of
//!    the differential config-space fuzzer, as run by
//!    `scripts/verify.sh` with a 256-case budget.

use accuracy::{compare, gemm_bound, mul_oracle, theoretical_bound, BoundSchedule};
use blas::level3::{gemm, GemmConfig};
use blas::Op;
use matrix::{norms, random, Matrix};
use strassen::{dgefmm, CutoffCriterion, StrassenConfig, Variant};

fn main() {
    println!("# Numerical accuracy vs. the compensated oracle\n");
    println!("All operands uniform in [-1, 1); u = {:.3e}; errors are ‖·‖_max.\n", f64::EPSILON);

    error_growth_sweep();
    componentwise_contrast();
    fuzz_campaign();
}

fn error_growth_sweep() {
    println!("## Error growth: measured vs envelope\n");
    println!(
        "| n | config | depth | measured | envelope | headroom | vs classic |\n\
         |---|--------|-------|----------|----------|----------|------------|"
    );
    for &n in &[64usize, 128, 256] {
        let a = random::uniform::<f64>(n, n, 2001 + n as u64);
        let b = random::uniform::<f64>(n, n, 2002 + n as u64);
        let reference = mul_oracle(&a, &b);

        // Classic GEMM first: the baseline row.
        let mut c = Matrix::zeros(n, n);
        gemm(&GemmConfig::blocked(), 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        let classic_err = norms::max_abs_diff(c.as_ref(), reference.as_ref()).max(f64::MIN_POSITIVE);
        let classic_env =
            theoretical_bound(n, n, n, &CutoffCriterion::Never, BoundSchedule::Classic) * f64::EPSILON;
        println!(
            "| {n} | classic blocked | 0 | {classic_err:.2e} | {classic_env:.2e} | {:.0}x | 1.0x |",
            classic_env / classic_err
        );

        for &tau in &[64usize, 32, 16] {
            if tau >= n {
                continue;
            }
            for variant in Variant::ALL {
                let cutoff = CutoffCriterion::Simple { tau };
                let cfg = StrassenConfig::dgefmm().variant(variant).cutoff(cutoff);
                let mut c = Matrix::zeros(n, n);
                dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
                let err = norms::max_abs_diff(c.as_ref(), reference.as_ref());
                let schedule = BoundSchedule::for_variant(variant);
                let env = gemm_bound(n, n, n, &cutoff, schedule, 1.0, 1.0, 1.0, 0.0, 0.0);
                assert!(err <= env, "envelope violated at n={n} tau={tau} {variant:?}");
                let depth = cutoff.square_depth(n);
                println!(
                    "| {n} | {variant:?} τ={tau} | {depth} | {err:.2e} | {env:.2e} | {:.0}x | {:.1}x |",
                    env / err.max(f64::MIN_POSITIVE),
                    err / classic_err
                );
            }
        }
    }
    println!();
}

fn componentwise_contrast() {
    println!("## Componentwise vs normwise (n = 192, τ = 16)\n");
    let n = 192;
    let a = random::uniform::<f64>(n, n, 3001);
    let b = random::uniform::<f64>(n, n, 3002);
    let reference = mul_oracle(&a, &b);

    let mut classic = Matrix::zeros(n, n);
    gemm(
        &GemmConfig::blocked(),
        1.0,
        Op::NoTrans,
        a.as_ref(),
        Op::NoTrans,
        b.as_ref(),
        0.0,
        classic.as_mut(),
    );
    let rc = compare(classic.as_ref(), reference.as_ref());

    let cfg = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 16 });
    let mut fast = Matrix::zeros(n, n);
    dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, fast.as_mut());
    let rf = compare(fast.as_ref(), reference.as_ref());

    println!("| algorithm | normwise | componentwise | max ulps |");
    println!("|-----------|----------|---------------|----------|");
    println!("| classic blocked | {:.2e} | {:.2e} | {} |", rc.normwise, rc.componentwise, rc.max_ulps);
    println!("| Winograd τ=16   | {:.2e} | {:.2e} | {} |", rf.normwise, rf.componentwise, rf.max_ulps);
    println!(
        "\nStrassen-type algorithms satisfy only *normwise* bounds: entries\n\
         produced by heavy cancellation are relatively loose while staying\n\
         absolutely tiny. The fuzzer therefore asserts the normwise\n\
         envelope and only reports componentwise figures.\n"
    );
}

fn fuzz_campaign() {
    let cases = accuracy::fuzz_budget();
    println!("## Differential fuzz campaign\n");
    println!(
        "master seed {:#x}, {cases} cases (FUZZ_ITERS to change), \
         config axes: shape/α/β/transposes/variant/schedule/odd/cutoff/parallel/fused/probe",
        testkit::master_seed()
    );
    accuracy::run_differential_fuzz(cases);
    println!("campaign passed: 0 envelope violations");
}
