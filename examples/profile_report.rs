//! Render the wall-clock profiling layer's full report from live runs.
//!
//! ```sh
//! cargo run --release --example profile_report            # full sizes
//! cargo run --release --example profile_report -- --quick # CI-sized
//! ```
//!
//! One invocation produces, from a single live profiled multiply plus a
//! parallel telemetry run and a cutoff-tuning sweep:
//!
//! * the per-level × per-phase wall-time table and the phase summary
//!   with effective GFLOP/s (stdout, markdown);
//! * `results/profile_report.json` — the versioned schema-1 document
//!   combining trace, profile, pool-stats delta, and tuning report;
//! * `results/profile_report.folded` — folded stacks for flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope).
//!
//! The example is also an executable cross-check: the profile's flop
//! accounting must equal the paper's eq. (4) closed form *exactly*, and
//! the emitted JSON is re-parsed with `testkit::json` (an independent
//! strict parser) before the success marker is printed — which is what
//! lets `scripts/verify.sh` drive it as a verification step.

use blas::Op;
use matrix::{random, Matrix};
use opcount::recurrence::winograd_square;
use strassen::probe::json::{self, JsonWriter};
use strassen::tuning::{tune_report, TuningReport};
use strassen::{dgefmm, trace, CutoffCriterion, Profile, Scheme, StrassenConfig};
use testkit::json::Json;

/// Sizing knobs: `--quick` keeps every stage CI-sized.
struct Params {
    /// Order of the profiled square multiply (a power of two times τ).
    profile_n: usize,
    /// Recursion depth that order implies at τ = 32.
    depth: u32,
    /// Order of the parallel pool-telemetry run.
    pool_n: usize,
    /// Square-sweep sizes for the tuning report.
    square_sizes: Vec<usize>,
    /// Rectangular-sweep sizes.
    rect_sizes: Vec<usize>,
    /// Fixed value of the two non-swept dimensions.
    rect_fixed: usize,
    /// Timed reps per tuning arm.
    reps: usize,
}

impl Params {
    fn new(quick: bool) -> Self {
        if quick {
            Params {
                profile_n: 256,
                depth: 3,
                pool_n: 512,
                square_sizes: vec![16, 24, 32],
                rect_sizes: vec![16, 24],
                rect_fixed: 64,
                reps: 2,
            }
        } else {
            Params {
                profile_n: 512,
                depth: 4,
                pool_n: 1024,
                square_sizes: vec![32, 48, 64, 96, 128],
                rect_sizes: vec![32, 48, 64],
                rect_fixed: 256,
                reps: 3,
            }
        }
    }
}

/// Stage 1: one profiled classic-schedule multiply, flop-checked against
/// the eq. (4) closed form.
fn profiled_multiply(p: &Params) -> Profile {
    let n = p.profile_n;
    let cfg = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 32 }).fused(false);
    let a = random::uniform::<f64>(n, n, 101);
    let b = random::uniform::<f64>(n, n, 102);
    let (_, profile) = trace::profile(|| {
        let mut c = Matrix::<f64>::zeros(n, n);
        dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        c
    });

    let analytic = winograd_square(p.depth, 32);
    assert_eq!(profile.model_flops(), analytic, "profiled flops must equal eq. (4) at d={}, m0=32", p.depth);
    assert_eq!(profile.model_flops(), profile.trace.total_flops(), "profile and trace accounting differ");

    println!("## Profiled {n}³ multiply — τ = 32, classic schedules\n");
    println!(
        "model flops: {} (= eq. (4) closed form, exact)  wall: {:.3} ms  effective: {:.3} GFLOP/s\n",
        profile.model_flops(),
        profile.trace.total_ns as f64 / 1e6,
        profile.model_flops() as f64 / profile.trace.total_ns.max(1) as f64,
    );
    println!("### Wall time per level and phase (ms)\n");
    println!("{}", profile.per_level_markdown());
    println!("### Phase summary\n");
    println!("{}", profile.phase_markdown());
    profile
}

/// Stage 2: a parallel seven-temp run, reported as a pool-stats delta.
fn pool_telemetry(p: &Params) -> pool::PoolStats {
    let n = p.pool_n;
    let cfg = StrassenConfig {
        parallel_depth: 2,
        ..StrassenConfig::dgefmm().scheme(Scheme::SevenTemp).cutoff(CutoffCriterion::Simple { tau: 128 })
    };
    let a = random::uniform::<f64>(n, n, 201);
    let b = random::uniform::<f64>(n, n, 202);
    let mut c = Matrix::<f64>::zeros(n, n);

    let before = pool::pool_stats();
    let t0 = std::time::Instant::now();
    dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let delta = pool::pool_stats().since(&before);

    println!("## Pool telemetry — parallel {n}³ seven-temp run, {} workers\n", delta.workers.len());
    println!("| worker | jobs | own pops | steals | busy (ms) | parks |\n|---|---|---|---|---|---|");
    for (i, w) in delta.workers.iter().enumerate() {
        println!(
            "| {i} | {} | {} | {} | {:.3} | {} |",
            w.jobs,
            w.own_pops,
            w.steals,
            w.busy_ns as f64 / 1e6,
            w.parks
        );
    }
    println!(
        "\njobs: {} (+{} run by helping scope owners)  wakeups: {}  utilization: {:.1}% of {} workers\n",
        delta.total_jobs(),
        delta.helper_pops,
        delta.wake_notifies,
        100.0 * delta.utilization(wall_ns) / delta.workers.len().max(1) as f64,
        delta.workers.len(),
    );
    delta
}

/// Stage 3: the Section 3.4 sweeps under the profiler.
fn tuning(p: &Params) -> TuningReport {
    let report = tune_report(
        &blas::level3::GemmConfig::blocked(),
        &p.square_sizes,
        &p.rect_sizes,
        p.rect_fixed,
        p.reps,
    );
    println!("## Telemetry-driven cutoff tuning (reps = {})\n", report.reps);
    println!(
        "tuned parameters: τ = {}, τm = {}, τk = {}, τn = {}\n",
        report.params.tau, report.params.tau_m, report.params.tau_k, report.params.tau_n
    );
    println!("| sweep | size | ratio | GEMM (ms ± MAD) | Strassen (ms ± MAD) | add share | leaf GFLOP/s |");
    println!("|---|---|---|---|---|---|---|");
    for sweep in [&report.square, &report.rect_m, &report.rect_k, &report.rect_n] {
        for pt in &sweep.points {
            println!(
                "| {} | {} | {:.3} | {:.3} ± {:.3} | {:.3} ± {:.3} | {:.1}% | {} |",
                sweep.dim,
                pt.size,
                pt.ratio,
                pt.gemm_s * 1e3,
                pt.gemm_mad_s * 1e3,
                pt.strassen_s * 1e3,
                pt.strassen_mad_s * 1e3,
                100.0 * pt.add_share,
                pt.gemm_leaf_gflops.map_or("—".into(), |g| format!("{g:.3}")),
            );
        }
    }
    println!();
    report
}

/// Compose the combined schema-1 document with the tuning report under
/// its own key.
fn combined_json(profile: &Profile, delta: &pool::PoolStats, tuning: &TuningReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.value_u64(1);
    w.key("kind");
    w.value_str("strassen_profile_report");
    w.key("trace");
    json::write_trace(&mut w, &profile.trace);
    w.key("profile");
    json::write_profile(&mut w, profile);
    w.key("pool");
    json::write_pool_stats(&mut w, delta);
    w.key("tuning");
    tuning.write_json(&mut w);
    w.end_object();
    w.finish()
}

/// Re-parse the emitted document with the independent `testkit` parser
/// and spot-check the schema before declaring success.
fn validate(json_doc: &str, profile: &Profile) {
    let doc = Json::parse(json_doc).expect("emitted JSON must parse cleanly with finite numbers");
    assert_eq!(doc.path("schema").unwrap().as_u64(), Some(1));
    assert_eq!(doc.path("kind").unwrap().as_str(), Some("strassen_profile_report"));
    assert_eq!(
        doc.path("profile.model_flops").unwrap().as_u128(),
        Some(profile.model_flops()),
        "serialized flops drifted from the in-memory profile"
    );
    assert_eq!(doc.path("profile.model_flops").unwrap(), doc.path("trace.total_flops").unwrap());
    for section in ["trace.levels", "profile.phases", "pool.workers", "tuning.sweeps"] {
        assert!(doc.path(section).unwrap().items().is_some(), "missing section {section}");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = Params::new(quick);

    let profile = profiled_multiply(&p);
    let delta = pool_telemetry(&p);
    let tuning_report = tuning(&p);

    let json_doc = combined_json(&profile, &delta, &tuning_report);
    validate(&json_doc, &profile);

    let folded = profile.folded_stacks();
    let folded_sum: u64 = folded.lines().map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap()).sum();
    assert_eq!(folded_sum, profile.trace.total_ns, "folded stacks must partition the wall time");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/profile_report.json", &json_doc).expect("write JSON report");
    std::fs::write("results/profile_report.folded", &folded).expect("write folded stacks");
    println!("wrote results/profile_report.json ({} bytes, schema 1, re-parsed OK)", json_doc.len());
    println!("wrote results/profile_report.folded ({} stack lines)", folded.lines().count());
    println!("PROFILE REPORT OK");
}
