//! Render the wall-clock profiling layer's full report from live runs.
//!
//! ```sh
//! cargo run --release --example profile_report            # full sizes
//! cargo run --release --example profile_report -- --quick # CI-sized
//! cargo run --release --example profile_report -- --quick --check # staleness gate
//! ```
//!
//! One invocation produces, from a single live profiled multiply plus a
//! timeline-recorded parallel telemetry run and a cutoff-tuning sweep:
//!
//! * the per-level × per-phase wall-time table and the phase summary
//!   with effective GFLOP/s (stdout, markdown);
//! * a hardware-counter roofline section (cycles, instructions, LLC
//!   misses via `perf_event_open`) when the kernel grants access, and a
//!   loud "unavailable" line otherwise — the report never fails for
//!   lack of perf permissions;
//! * an execution-timeline summary of the parallel run (tagged tasks
//!   and DAG edges per recursion level, drop count);
//! * `results/profile_report.json` — the versioned schema-2 document
//!   combining trace, profile, pool-stats delta, timeline, hardware
//!   counters, and tuning report;
//! * `results/profile_report.folded` — folded stacks for flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope).
//!
//! The example is also an executable cross-check: the profile's flop
//! accounting must equal the paper's eq. (4) closed form *exactly*, and
//! the emitted JSON is re-parsed with `testkit::json` (an independent
//! strict parser) and run through `validate_profile_report` before the
//! success marker is printed — which is what lets `scripts/verify.sh`
//! drive it as a verification step.
//!
//! `--check` regenerates the document in memory and compares its
//! *structural fingerprint* (schema, sections, flop totals, phase
//! labels, timeline task/edge structure, folded frame set — everything
//! except the wall-clock numbers that legitimately vary run to run)
//! against `results/profile_report.{json,folded}`, exiting non-zero if
//! the committed artifacts are stale.

use blas::Op;
use matrix::{random, Matrix};
use opcount::recurrence::winograd_square;
use strassen::probe::json::{self, JsonWriter};
use strassen::probe::timeline::{self, Timeline};
use strassen::probe::TimedProbe;
use strassen::tuning::{tune_report, TuningReport};
use strassen::{dgefmm, trace, CutoffCriterion, Profile, Scheme, StrassenConfig};
use testkit::json::{validate_profile_report, Json};

/// Sizing knobs: `--quick` keeps every stage CI-sized.
struct Params {
    /// Order of the profiled square multiply (a power of two times τ).
    profile_n: usize,
    /// Recursion depth that order implies at τ = 32.
    depth: u32,
    /// Order of the parallel pool-telemetry run.
    pool_n: usize,
    /// Square-sweep sizes for the tuning report.
    square_sizes: Vec<usize>,
    /// Rectangular-sweep sizes.
    rect_sizes: Vec<usize>,
    /// Fixed value of the two non-swept dimensions.
    rect_fixed: usize,
    /// Timed reps per tuning arm.
    reps: usize,
}

impl Params {
    fn new(quick: bool) -> Self {
        if quick {
            Params {
                profile_n: 256,
                depth: 3,
                pool_n: 512,
                square_sizes: vec![16, 24, 32],
                rect_sizes: vec![16, 24],
                rect_fixed: 64,
                reps: 2,
            }
        } else {
            Params {
                profile_n: 512,
                depth: 4,
                pool_n: 1024,
                square_sizes: vec![32, 48, 64, 96, 128],
                rect_sizes: vec![32, 48, 64],
                rect_fixed: 256,
                reps: 3,
            }
        }
    }
}

/// Stage 1: one profiled classic-schedule multiply, flop-checked against
/// the eq. (4) closed form. The probe carries `perf_event_open` hardware
/// counters when the kernel grants them.
fn profiled_multiply(p: &Params) -> Profile {
    let n = p.profile_n;
    let cfg = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 32 }).fused(false);
    let a = random::uniform::<f64>(n, n, 101);
    let b = random::uniform::<f64>(n, n, 102);
    let (_, probe) = trace::with_probe(TimedProbe::with_hw_counters(), || {
        let mut c = Matrix::<f64>::zeros(n, n);
        dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        c
    });
    let profile = probe.into_profile();

    let analytic = winograd_square(p.depth, 32);
    assert_eq!(profile.model_flops(), analytic, "profiled flops must equal eq. (4) at d={}, m0=32", p.depth);
    assert_eq!(profile.model_flops(), profile.trace.total_flops(), "profile and trace accounting differ");

    println!("## Profiled {n}³ multiply — τ = 32, classic schedules\n");
    println!(
        "model flops: {} (= eq. (4) closed form, exact)  wall: {:.3} ms  effective: {:.3} GFLOP/s\n",
        profile.model_flops(),
        profile.trace.total_ns as f64 / 1e6,
        profile.model_flops() as f64 / profile.trace.total_ns.max(1) as f64,
    );
    println!("### Wall time per level and phase (ms)\n");
    println!("{}", profile.per_level_markdown());
    println!("### Phase summary\n");
    println!("{}", profile.phase_markdown());
    profile
}

/// Roofline section from the hardware counters filed into the profile —
/// or a loud, graceful fallback when `perf_event_open` is unavailable
/// (unprivileged containers, non-Linux hosts).
fn roofline(profile: &Profile) {
    println!("## Hardware counters (perf_event_open, calling thread)\n");
    let Some(hw) = &profile.hw else {
        println!(
            "hardware counters unavailable on this host (perf_event_open denied \
             or unsupported) — roofline section skipped\n"
        );
        return;
    };
    let t = &hw.total;
    println!("| counter | total |\n|---|---|");
    for (name, count) in t.pairs() {
        println!("| {name} | {count} |");
    }
    let flops = profile.model_flops() as f64;
    println!("\n### Roofline / arithmetic-intensity estimates\n");
    if let Some(ipc) = t.ipc() {
        println!("* instructions per cycle: {ipc:.3}");
    }
    if t.cycles > 0 {
        println!("* model flops per cycle: {:.3}", flops / t.cycles as f64);
    }
    if t.cache_misses > 0 {
        // Each LLC miss moves one cache line (64 B); flops per byte of
        // DRAM traffic is the operational intensity a roofline plots.
        println!("* model flops per LLC miss: {:.1}", flops / t.cache_misses as f64);
        println!(
            "* operational intensity (flops / miss-byte): {:.3}",
            flops / (64.0 * t.cache_misses as f64)
        );
    }
    let leaf = hw.phase(strassen::Phase::GemmLeaf);
    if leaf.cycles > 0 {
        println!(
            "* leaf-GEMM share of cycles: {:.1}% (IPC {})",
            100.0 * leaf.cycles as f64 / t.cycles.max(1) as f64,
            leaf.ipc().map_or("—".into(), |v| format!("{v:.3}")),
        );
    }
    println!();
}

/// Stage 2: a parallel seven-temp run recorded by the per-worker event
/// rings, reported as a pool-stats delta plus a timeline summary.
/// Classic (non-fused) schedules so both parallel levels run real DAG
/// instances with tagged tasks.
fn pool_telemetry(p: &Params) -> (pool::PoolStats, Timeline) {
    let n = p.pool_n;
    let cfg = StrassenConfig {
        parallel_depth: 2,
        ..StrassenConfig::dgefmm()
            .scheme(Scheme::SevenTemp)
            .cutoff(CutoffCriterion::Simple { tau: 128 })
            .fused(false)
    };
    let a = random::uniform::<f64>(n, n, 201);
    let b = random::uniform::<f64>(n, n, 202);
    let mut c = Matrix::<f64>::zeros(n, n);

    let before = pool::pool_stats();
    let t0 = std::time::Instant::now();
    let (wall_ns, tl) = timeline::record(|| {
        dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        t0.elapsed().as_nanos() as u64
    });
    let delta = pool::pool_stats().since(&before);

    println!("## Pool telemetry — parallel {n}³ seven-temp run, {} workers\n", delta.workers.len());
    println!("| worker | jobs | own pops | steals | busy (ms) | parks |\n|---|---|---|---|---|---|");
    for (i, w) in delta.workers.iter().enumerate() {
        println!(
            "| {i} | {} | {} | {} | {:.3} | {} |",
            w.jobs,
            w.own_pops,
            w.steals,
            w.busy_ns as f64 / 1e6,
            w.parks
        );
    }
    println!(
        "\njobs: {} (+{} run by helping scope owners)  wakeups: {}  utilization: {:.1}% of {} workers\n",
        delta.total_jobs(),
        delta.helper_pops,
        delta.wake_notifies,
        100.0 * delta.utilization(wall_ns) / delta.workers.len().max(1) as f64,
        delta.workers.len(),
    );

    println!("### Execution timeline (event rings)\n");
    println!(
        "{} events across {} lanes ({} dropped), {} tagged task slices, {} DAG edges",
        tl.all_events().count(),
        tl.lanes.len(),
        tl.total_dropped(),
        tl.duration_events(),
        tl.edges.len(),
    );
    for (level, tasks) in tl.per_level_task_counts() {
        println!("* level {level}: {tasks} tagged tasks");
    }
    println!();
    (delta, tl)
}

/// Stage 3: the Section 3.4 sweeps under the profiler.
fn tuning(p: &Params) -> TuningReport {
    let report = tune_report(
        &blas::level3::GemmConfig::blocked(),
        &p.square_sizes,
        &p.rect_sizes,
        p.rect_fixed,
        p.reps,
    );
    println!("## Telemetry-driven cutoff tuning (reps = {})\n", report.reps);
    println!(
        "tuned parameters: τ = {}, τm = {}, τk = {}, τn = {}\n",
        report.params.tau, report.params.tau_m, report.params.tau_k, report.params.tau_n
    );
    println!("| sweep | size | ratio | GEMM (ms ± MAD) | Strassen (ms ± MAD) | add share | leaf GFLOP/s |");
    println!("|---|---|---|---|---|---|---|");
    for sweep in [&report.square, &report.rect_m, &report.rect_k, &report.rect_n] {
        for pt in &sweep.points {
            println!(
                "| {} | {} | {:.3} | {:.3} ± {:.3} | {:.3} ± {:.3} | {:.1}% | {} |",
                sweep.dim,
                pt.size,
                pt.ratio,
                pt.gemm_s * 1e3,
                pt.gemm_mad_s * 1e3,
                pt.strassen_s * 1e3,
                pt.strassen_mad_s * 1e3,
                100.0 * pt.add_share,
                pt.gemm_leaf_gflops.map_or("—".into(), |g| format!("{g:.3}")),
            );
        }
    }
    println!();
    report
}

/// Compose the combined schema-2 document: the `report_json_full`
/// envelope (trace, profile, pool, timeline, hardware counters) with
/// the tuning report under its own key.
fn combined_json(profile: &Profile, delta: &pool::PoolStats, tl: &Timeline, tuning: &TuningReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.value_u64(2);
    w.key("kind");
    w.value_str("strassen_profile_report");
    w.key("trace");
    json::write_trace(&mut w, &profile.trace);
    w.key("profile");
    json::write_profile(&mut w, profile);
    w.key("pool");
    json::write_pool_stats(&mut w, delta);
    w.key("timeline");
    json::write_timeline(&mut w, tl);
    if let Some(hw) = &profile.hw {
        w.key("hw_counters");
        w.begin_array();
        for (name, count) in hw.total.pairs() {
            w.begin_object();
            w.key("name");
            w.value_str(name);
            w.key("count");
            w.value_u64(count);
            w.end_object();
        }
        w.end_array();
    }
    w.key("tuning");
    tuning.write_json(&mut w);
    w.end_object();
    w.finish()
}

/// Re-parse the emitted document with the independent `testkit` parser,
/// run the schema validator, and spot-check the cross-layer invariants
/// before declaring success.
fn validate(json_doc: &str, profile: &Profile) {
    let doc = Json::parse(json_doc).expect("emitted JSON must parse cleanly with finite numbers");
    assert_eq!(validate_profile_report(&doc), Ok(2), "document must satisfy the schema-2 validator");
    assert_eq!(
        doc.path("profile.model_flops").unwrap().as_u128(),
        Some(profile.model_flops()),
        "serialized flops drifted from the in-memory profile"
    );
    assert_eq!(doc.path("profile.model_flops").unwrap(), doc.path("trace.total_flops").unwrap());
    for section in ["trace.levels", "profile.phases", "pool.workers", "timeline.levels", "tuning.sweeps"] {
        assert!(doc.path(section).unwrap().items().is_some(), "missing section {section}");
    }
}

/// The run-to-run-stable skeleton of a report document: everything the
/// `--check` gate compares. Wall-clock numbers, counter values, steal
/// counts, and worker counts vary between runs and hosts; the schema,
/// section layout, exact flop accounting, phase labels, recursion
/// shape, and tagged-task structure of the recorded timeline do not.
fn fingerprint(doc: &Json) -> String {
    let mut f = String::new();
    let get_u128 = |path: &str| doc.path(path).and_then(|v| v.as_u128());
    f.push_str(&format!("schema={:?}\n", doc.path("schema").and_then(|v| v.as_u64())));
    f.push_str(&format!("kind={:?}\n", doc.path("kind").and_then(|v| v.as_str().map(str::to_owned))));
    // `hw_counters` is deliberately absent from the fingerprint: its
    // presence depends on whether the host grants perf_event_open, so a
    // document generated in an unprivileged container must not read as
    // stale on bare metal (or vice versa).
    for section in ["trace", "profile", "pool", "timeline", "tuning"] {
        f.push_str(&format!("has.{section}={}\n", doc.get(section).is_some()));
    }
    f.push_str(&format!("trace.total_flops={:?}\n", get_u128("trace.total_flops")));
    f.push_str(&format!("trace.max_depth={:?}\n", get_u128("trace.max_depth")));
    f.push_str(&format!("profile.model_flops={:?}\n", get_u128("profile.model_flops")));
    let levels = doc.path("trace.levels").and_then(|v| v.items().map(|i| i.len()));
    f.push_str(&format!("trace.levels.len={levels:?}\n"));
    if let Some(phases) = doc.path("profile.phases").and_then(|v| v.items()) {
        let labels: Vec<&str> = phases.iter().filter_map(|p| p.get("phase").and_then(Json::as_str)).collect();
        f.push_str(&format!("profile.phase_labels={labels:?}\n"));
    }
    // The tagged-task structure of the recorded parallel run is fully
    // determined by the telemetry config (fused off, parallel_depth 2):
    // 21 tasks and 25 edges per seven-temp DAG instance, 1 + 7 instances.
    for key in ["timeline.tasks", "timeline.edges"] {
        f.push_str(&format!("{key}={:?}\n", get_u128(key)));
    }
    if let Some(levels) = doc.path("timeline.levels").and_then(|v| v.items()) {
        for l in levels {
            f.push_str(&format!(
                "timeline.level[{:?}]={:?}\n",
                l.get("level").and_then(Json::as_u64),
                l.get("tasks").and_then(Json::as_u64)
            ));
        }
    }
    if let Some(sweeps) = doc.path("tuning.sweeps").and_then(|v| v.items()) {
        for s in sweeps {
            f.push_str(&format!(
                "tuning.sweep[{:?}].points={:?}\n",
                s.get("dim").and_then(Json::as_str),
                s.get("points").and_then(|p| p.items().map(|i| i.len()))
            ));
        }
    }
    f
}

/// The frame set of a folded-stacks file — the call-tree structure,
/// which is deterministic for a fixed config, unlike the sample counts.
fn folded_frames(folded: &str) -> std::collections::BTreeSet<String> {
    folded.lines().filter_map(|l| l.rsplit_once(' ').map(|(frames, _count)| frames.to_string())).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let p = Params::new(quick);

    let profile = profiled_multiply(&p);
    roofline(&profile);
    let (delta, tl) = pool_telemetry(&p);
    let tuning_report = tuning(&p);

    let json_doc = combined_json(&profile, &delta, &tl, &tuning_report);
    validate(&json_doc, &profile);

    let folded = profile.folded_stacks();
    let folded_sum: u64 = folded.lines().map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap()).sum();
    assert_eq!(folded_sum, profile.trace.total_ns, "folded stacks must partition the wall time");

    if check {
        let mode = if quick { " --quick" } else { "" };
        let stale = |what: &str| -> ! {
            eprintln!(
                "results/profile_report.{what} is stale: \
                 run `cargo run --release --example profile_report --{mode}`"
            );
            std::process::exit(1);
        };
        let disk_json = std::fs::read_to_string("results/profile_report.json").unwrap_or_default();
        let fresh_fp = fingerprint(&Json::parse(&json_doc).unwrap());
        let disk_fp = Json::parse(&disk_json).map(|d| fingerprint(&d)).unwrap_or_default();
        if fresh_fp != disk_fp {
            eprintln!("--- fingerprint of committed document:\n{disk_fp}");
            eprintln!("--- fingerprint of fresh document:\n{fresh_fp}");
            stale("json");
        }
        let disk_folded = std::fs::read_to_string("results/profile_report.folded").unwrap_or_default();
        if folded_frames(&folded) != folded_frames(&disk_folded) {
            stale("folded");
        }
        println!("profile_report --check: committed artifacts are structurally current");
        println!("PROFILE REPORT OK");
        return;
    }

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/profile_report.json", &json_doc).expect("write JSON report");
    std::fs::write("results/profile_report.folded", &folded).expect("write folded stacks");
    println!("wrote results/profile_report.json ({} bytes, schema 2, re-parsed OK)", json_doc.len());
    println!("wrote results/profile_report.folded ({} stack lines)", folded.lines().count());
    println!("PROFILE REPORT OK");
}
