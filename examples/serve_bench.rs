//! Serving-layer load generator: deterministic mixed-shape request
//! streams against the shape-bucketed batching server, reporting the
//! latency distribution (p50/p99/p999) and aggregate throughput into
//! `BENCH_PR10.json`.
//!
//! ```sh
//! cargo run --release --example serve_bench                # full run
//! BENCH_SMOKE=1 cargo run --release --example serve_bench  # CI smoke
//! ```
//!
//! The stream is a pure function of `SERVE_BENCH_SEED`: shapes come
//! from the differential fuzzer's sampler (`accuracy::draw_shape` —
//! square, skinny and odd/prime shapes up to 80), operands are drawn
//! once per distinct shape, and requests cycle over that pool through
//! the seeded generator. Submission uses `submit_blocking` with a
//! bounded outstanding-ticket window, so the harness applies
//! backpressure instead of shedding — `rejected_full` must end at 0.
//!
//! Three runs: the main batched run (default server posture) sized by
//! `SERVE_BENCH_REQUESTS` (smoke default 100 000 requests, full
//! 200 000), then a batched-vs-unbatched comparison pair on a shorter
//! identical stream. The comparison feeds the batching gate: batched
//! aggregate throughput ≥ 1.3× unbatched, enforced only on a full run
//! with ≥ 2 physical cores (a single-core host cannot overlap batch
//! members; the gate is recorded and loudly waived there, same policy
//! as `bench_quick`'s parallel gates). `BENCH_NO_GUARD=1` demotes an
//! enforced failure to a warning.
//!
//! The persistent autotune cache round-trips here too: the run adopts
//! `results/serve_tuning.json` when its machine profile matches,
//! otherwise warm-starts from the committed `BENCH_PR7` sweep artifact
//! and saves the cache for the next process.
//!
//! Output: `BENCH_PR10.json` (or `.smoke.json`), with a `results`
//! array keyed `(bench = "serve_<class>", n = bucket bin)` so
//! `examples/bench_diff.rs` can diff serving trajectories shape by
//! shape exactly like the kernel benches.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use accuracy::draw_shape;
use matrix::{random, Matrix};
use serve::{BucketKey, MachineProfile, Request, Server, ServerConfig, ServerStats, Ticket, TuneCache};
use strassen::probe::json::JsonWriter;
use testkit::Gen;

const TUNING_CACHE_PATH: &str = "results/serve_tuning.json";
/// Outstanding-ticket window: enough to keep every dispatch cycle full
/// (default queue depth) without holding the whole stream in memory.
const WINDOW: usize = 256;
/// Distinct shapes in the operand pool; requests cycle over these.
const SHAPE_POOL: usize = 48;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// One pre-drawn shape with its operands; requests clone the matrices.
struct PooledShape {
    dims: (usize, usize, usize),
    flops: f64,
    a: Matrix<f64>,
    b: Matrix<f64>,
}

fn build_pool(seed: u64) -> Vec<PooledShape> {
    let mut g = Gen::new(seed, 1.0);
    (0..SHAPE_POOL)
        .map(|_| {
            let (m, k, n) = draw_shape(&mut g);
            PooledShape {
                dims: (m, k, n),
                flops: 2.0 * (m * k * n) as f64,
                a: random::uniform::<f64>(m, k, g.seed()),
                b: random::uniform::<f64>(k, n, g.seed()),
            }
        })
        .collect()
}

#[derive(Default)]
struct BucketAgg {
    requests: u64,
    min_exec_ns: u64,
    best_gflops: f64,
}

struct RunReport {
    wall_s: f64,
    total_flops: f64,
    /// Sorted end-to-end latencies in microseconds.
    latencies_us: Vec<f64>,
    per_bucket: BTreeMap<BucketKey, BucketAgg>,
    stats: ServerStats,
}

impl RunReport {
    fn gflops_aggregate(&self) -> f64 {
        self.total_flops / self.wall_s / 1e9
    }

    fn p(&self, q: f64) -> f64 {
        stats::percentile(&self.latencies_us, q)
    }
}

/// Drive `count` requests through `server` with backpressure and a
/// bounded window, recording per-request latency and per-bucket exec
/// extremes. Consumes and shuts down the server so the wall clock
/// includes the final drain.
fn run_stream(server: Server, count: usize, pool: &[PooledShape], seed: u64) -> RunReport {
    let mut g = Gen::new(seed, 1.0);
    let mut latencies_us = Vec::with_capacity(count);
    let mut per_bucket: BTreeMap<BucketKey, BucketAgg> = BTreeMap::new();
    let mut total_flops = 0.0;
    let mut window: VecDeque<(Ticket, f64)> = VecDeque::with_capacity(WINDOW);

    let mut complete = |(ticket, flops): (Ticket, f64)| {
        let done = ticket.wait();
        latencies_us.push(done.latency_ns as f64 / 1e3);
        let agg = per_bucket.entry(done.bucket).or_default();
        agg.requests += 1;
        let exec = done.exec_ns.max(1);
        if agg.min_exec_ns == 0 || exec < agg.min_exec_ns {
            agg.min_exec_ns = exec;
        }
        agg.best_gflops = agg.best_gflops.max(flops / exec as f64);
        total_flops += flops;
    };

    let start = Instant::now();
    for _ in 0..count {
        let shape = &pool[g.usize_in_incl(0, pool.len() - 1)];
        let ticket = server
            .submit_blocking(Request::new(shape.a.clone(), shape.b.clone()))
            .expect("backpressure admission cannot shed");
        window.push_back((ticket, shape.flops));
        if window.len() >= WINDOW {
            complete(window.pop_front().expect("window non-empty"));
        }
    }
    while let Some(pending) = window.pop_front() {
        complete(pending);
    }
    let stats = server.shutdown();
    let wall_s = start.elapsed().as_secs_f64();

    assert_eq!(stats.completed as usize, count, "every request must be served");
    assert_eq!(stats.rejected_full, 0, "blocking submission must never shed");
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    RunReport { wall_s, total_flops, latencies_us, per_bucket, stats }
}

/// The unbatched control: one request per cycle, one in flight.
fn unbatched_config() -> ServerConfig {
    ServerConfig { max_batch: 1, bucket_in_flight_cap: 1, global_width: 1, ..ServerConfig::default() }
}

fn write_latency(w: &mut JsonWriter, r: &RunReport) {
    w.begin_object();
    for (key, v) in [
        ("wall_s", r.wall_s),
        ("gflops_aggregate", r.gflops_aggregate()),
        ("p50_us", r.p(0.50)),
        ("p99_us", r.p(0.99)),
        ("p999_us", r.p(0.999)),
        ("max_us", *r.latencies_us.last().expect("non-empty run")),
    ] {
        w.key(key);
        w.value_f64(v);
    }
    w.key("requests");
    w.value_u64(r.latencies_us.len() as u64);
    w.end_object();
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let no_guard = std::env::var_os("BENCH_NO_GUARD").is_some();
    let seed = env_usize("SERVE_BENCH_SEED", 0x5EE7) as u64;
    let count = env_usize("SERVE_BENCH_REQUESTS", if smoke { 100_000 } else { 200_000 });
    let compare_count = (count / 5).clamp(1, 20_000);

    let workers = pool::pin_once(pool::machine_threads());
    let profile = MachineProfile::detect();
    let phys = profile.physical_cores;
    println!(
        "serve_bench (PR 10{}): {count} requests over {SHAPE_POOL} shapes, {workers} pool workers \
         ({phys} physical cores), comparison streams of {compare_count}",
        if smoke { ", smoke" } else { "" },
    );

    // Persistent autotune cache: adopt a saved table for this machine
    // profile, else warm-start from the committed crossover sweep.
    let (mut cache, adopted) = TuneCache::load(TUNING_CACHE_PATH, profile.clone());
    let warm_source = if adopted {
        format!("adopted {TUNING_CACHE_PATH}")
    } else if cache.warm_start_from_bench("BENCH_PR7.json") {
        "warm-started from BENCH_PR7.json sweep".to_string()
    } else if cache.warm_start_from_bench("BENCH_PR7.smoke.json") {
        "warm-started from BENCH_PR7.smoke.json sweep".to_string()
    } else {
        "paper-default tuning (no artifacts found)".to_string()
    };
    println!("tuning: {warm_source}");

    let pool_shapes = build_pool(seed);
    for s in pool_shapes.iter().take(4) {
        let (m, k, n) = s.dims;
        println!("  shape pool head: {m}x{k}x{n} -> {}", BucketKey::classify(m, k, n).label());
    }

    // Main batched run: the default serving posture.
    let main_run = run_stream(
        Server::start_with_cache(ServerConfig::default(), cache.clone()),
        count,
        &pool_shapes,
        seed ^ 0xA11,
    );
    println!(
        "batched: {count} requests in {:.2}s ({:.2} GFLOP/s aggregate), \
         p50 {:.1}us p99 {:.1}us p999 {:.1}us, {} cycles (mean batch {:.1})",
        main_run.wall_s,
        main_run.gflops_aggregate(),
        main_run.p(0.50),
        main_run.p(0.99),
        main_run.p(0.999),
        main_run.stats.batches,
        main_run.stats.completed as f64 / main_run.stats.batches.max(1) as f64,
    );

    // Comparison pair on one identical shorter stream: batched posture
    // vs the single-file control. Same seed, same shapes, same count —
    // the only variable is coalescing.
    let batched = run_stream(
        Server::start_with_cache(ServerConfig::default(), cache.clone()),
        compare_count,
        &pool_shapes,
        seed ^ 0xB47,
    );
    let unbatched = run_stream(
        Server::start_with_cache(unbatched_config(), cache.clone()),
        compare_count,
        &pool_shapes,
        seed ^ 0xB47,
    );
    let speedup = batched.gflops_aggregate() / unbatched.gflops_aggregate();
    println!(
        "comparison: batched {:.2} vs unbatched {:.2} GFLOP/s aggregate -> {speedup:.2}x batching speedup",
        batched.gflops_aggregate(),
        unbatched.gflops_aggregate(),
    );

    // Batching gate: only a full run on a multicore host can express
    // cross-request overlap, mirroring bench_quick's gate policy.
    let gate_min = 1.3;
    let enforced = !smoke && phys >= 2 && !no_guard;
    let pass = speedup >= gate_min;
    let waive_reason = if enforced {
        String::new()
    } else if smoke {
        "smoke run: functional pass, gates recorded only".to_string()
    } else if phys < 2 {
        format!("{phys} physical core(s) cannot overlap batch members")
    } else {
        "BENCH_NO_GUARD=1".to_string()
    };

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("pr");
    w.value_u64(10);
    w.key("smoke");
    w.value_bool(smoke);
    w.key("seed");
    w.value_u64(seed);
    w.key("pool");
    w.begin_object();
    w.key("workers");
    w.value_u64(workers as u64);
    w.key("physical_cores");
    w.value_u64(phys as u64);
    w.key("env_override");
    w.value_bool(std::env::var_os("STRASSEN_THREADS").is_some());
    w.end_object();
    w.key("machine");
    w.begin_object();
    w.key("kernel_class");
    w.value_str(&profile.kernel);
    for (key, v) in [
        ("l1d", profile.l1d),
        ("l2", profile.l2),
        ("l3", profile.l3),
        ("mc", profile.mc),
        ("kc", profile.kc),
        ("nc", profile.nc),
    ] {
        w.key(key);
        w.value_u64(v as u64);
    }
    w.end_object();
    w.key("tuning_cache");
    w.begin_object();
    w.key("path");
    w.value_str(TUNING_CACHE_PATH);
    w.key("adopted");
    w.value_bool(adopted);
    w.key("source");
    w.value_str(&warm_source);
    w.key("entries");
    w.value_u64(cache.entries().count() as u64);
    w.end_object();
    w.key("latency");
    write_latency(&mut w, &main_run);
    w.key("serving");
    w.begin_object();
    for (key, v) in [
        ("batches", main_run.stats.batches),
        ("max_wait_cycles", main_run.stats.max_wait_cycles),
        ("fifo_violations", main_run.stats.fifo_violations),
        ("rejected_full", main_run.stats.rejected_full),
    ] {
        w.key(key);
        w.value_u64(v);
    }
    w.key("max_cycle_size");
    w.value_u64(main_run.stats.max_cycle_size as u64);
    w.key("max_bucket_batch");
    w.value_u64(main_run.stats.max_bucket_batch as u64);
    w.key("mean_batch");
    w.value_f64(main_run.stats.completed as f64 / main_run.stats.batches.max(1) as f64);
    w.end_object();
    w.key("results");
    w.begin_array();
    for (bucket, agg) in &main_run.per_bucket {
        w.begin_object();
        w.key("bench");
        w.value_str(&format!("serve_{}", bucket.class.name()));
        w.key("n");
        w.value_u64(bucket.bin as u64);
        w.key("requests");
        w.value_u64(agg.requests);
        w.key("min_ms");
        w.value_f64(agg.min_exec_ns as f64 / 1e6);
        w.key("gflops_min");
        w.value_f64(agg.best_gflops);
        w.end_object();
    }
    w.end_array();
    w.key("comparison");
    w.begin_object();
    w.key("requests");
    w.value_u64(compare_count as u64);
    w.key("batched");
    write_latency(&mut w, &batched);
    w.key("unbatched");
    write_latency(&mut w, &unbatched);
    w.key("batching_speedup");
    w.value_f64(speedup);
    w.end_object();
    w.key("gates");
    w.begin_object();
    w.key("batching_speedup_min");
    w.value_f64(gate_min);
    w.key("batching_speedup");
    w.value_f64(speedup);
    w.key("enforced");
    w.value_bool(enforced);
    w.key("pass");
    w.value_bool(pass);
    w.key("waive_reason");
    w.value_str(&waive_reason);
    w.end_object();
    w.end_object();

    let out = if smoke { "BENCH_PR10.smoke.json" } else { "BENCH_PR10.json" };
    std::fs::write(out, w.finish()).expect("write bench artifact");
    println!("wrote {out}");

    if let Err(e) = cache.save(TUNING_CACHE_PATH) {
        println!("warning: could not persist tuning cache: {e}");
    } else if !adopted {
        println!("persisted tuning cache to {TUNING_CACHE_PATH}");
    }

    if !pass {
        if enforced {
            eprintln!("GATE FAILED: batching speedup {speedup:.2}x < {gate_min}x");
            std::process::exit(1);
        }
        println!("gate waived ({waive_reason}): batching speedup {speedup:.2}x < {gate_min}x");
    }
    println!("SERVE BENCH OK");
}
