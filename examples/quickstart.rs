//! Quickstart: DGEFMM as a drop-in GEMM replacement.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blas::level3::{gemm, GemmConfig};
use blas::Op;
use matrix::{norms, random, Matrix};
use strassen::{dgefmm, required_workspace, StrassenConfig};

fn main() {
    // A general GEMM-shaped problem: C ← α·A·Bᵀ + β·C, odd sizes included.
    let (m, k, n) = (501, 387, 443);
    let (alpha, beta) = (1.0 / 3.0, 1.0 / 4.0);
    let a = random::uniform::<f64>(m, k, 1);
    let bt = random::uniform::<f64>(n, k, 2); // stored transposed
    let c0 = random::uniform::<f64>(m, n, 3);

    // The conventional answer (our from-scratch blocked DGEMM).
    let mut c_ref = c0.clone();
    gemm(
        &GemmConfig::blocked(),
        alpha,
        Op::NoTrans,
        a.as_ref(),
        Op::Trans,
        bt.as_ref(),
        beta,
        c_ref.as_mut(),
    );

    // The same call through DGEFMM: identical interface, Strassen inside.
    let cfg = StrassenConfig::with_square_cutoff(128);
    let mut c = c0.clone();
    dgefmm(&cfg, alpha, Op::NoTrans, a.as_ref(), Op::Trans, bt.as_ref(), beta, c.as_mut());

    println!("problem: C({m}x{n}) <- {alpha:.3}*A({m}x{k})*B'({k}x{n}) + {beta:.2}*C");
    println!("recursion depth: {}", strassen::planned_depth(&cfg, m, k, n));
    println!(
        "temporary workspace: {} elements = {:.2} x mn (paper bound for beta!=0: 1.0 x mn square)",
        required_workspace(&cfg, m, k, n, false),
        required_workspace(&cfg, m, k, n, false) as f64 / (m * n) as f64
    );
    println!("max |dgefmm - dgemm| = {:.3e}", norms::max_abs_diff(c.as_ref(), c_ref.as_ref()));

    // And the one-line convenience API.
    let small = strassen::multiply(&Matrix::<f64>::identity(8), &Matrix::identity(8));
    assert_eq!(small, Matrix::identity(8));
    println!("ok: results agree to rounding");
}
