//! Bench-trajectory differ: compare two `BENCH_*.json` files shape by
//! shape.
//!
//! ```sh
//! cargo run --release --example bench_diff -- \
//!     BENCH_PR7.baseline.json BENCH_PR7.json [--threshold 10] [--waive]
//! ```
//!
//! Both files are parsed with `testkit::json` (the strict parser — a
//! malformed bench artifact fails here, not downstream) and joined on
//! `(bench, n)`. For every shape present in both runs the differ reports
//! the `gflops_min` ratio new/old, flags regressions beyond the
//! threshold (default 10%), and summarizes each bench series with the
//! geometric mean of its ratios — the aggregate under which a 2×
//! regression and a 2× improvement cancel instead of averaging out to
//! +25%.
//!
//! Exit status: 0 when no shape regresses beyond the threshold (or
//! `--waive` was given — the report still prints loudly), 1 otherwise.
//! Shapes present in only one file are listed but never gate; bench
//! trajectories legitimately gain and lose sizes between PRs.

use std::collections::BTreeMap;
use std::process::ExitCode;
use testkit::json::Json;

/// One `(bench, n)` measurement pulled out of a results array.
#[derive(Clone, Debug)]
struct Sample {
    gflops_min: f64,
    min_ms: f64,
}

type Key = (String, u64);

fn load(path: &str) -> Result<BTreeMap<Key, Sample>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let results =
        doc.get("results").and_then(Json::items).ok_or(format!("{path}: no top-level \"results\" array"))?;
    let mut out = BTreeMap::new();
    for (i, r) in results.iter().enumerate() {
        let context = |what: &str| format!("{path}: results[{i}] missing {what}");
        let bench = r.get("bench").and_then(Json::as_str).ok_or_else(|| context("bench"))?;
        let n = r.get("n").and_then(Json::as_u64).ok_or_else(|| context("n"))?;
        let gflops_min = r.get("gflops_min").and_then(Json::as_f64).ok_or_else(|| context("gflops_min"))?;
        let min_ms = r.get("min_ms").and_then(Json::as_f64).ok_or_else(|| context("min_ms"))?;
        out.insert((bench.to_string(), n), Sample { gflops_min, min_ms });
    }
    Ok(out)
}

fn run(old_path: &str, new_path: &str, threshold_pct: f64, waive: bool) -> Result<ExitCode, String> {
    let old = load(old_path)?;
    let new = load(new_path)?;

    println!("# bench diff: {old_path} -> {new_path} (threshold {threshold_pct}%)\n");
    println!("| bench | n | old GFLOP/s | new GFLOP/s | ratio | delta | verdict |");
    println!("|---|---|---|---|---|---|---|");

    let mut per_bench: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut regressions: Vec<String> = Vec::new();
    for (key, old_s) in &old {
        let Some(new_s) = new.get(key) else { continue };
        if old_s.gflops_min <= 0.0 || new_s.gflops_min <= 0.0 {
            return Err(format!("non-positive gflops_min for {key:?} — corrupt artifact"));
        }
        let ratio = new_s.gflops_min / old_s.gflops_min;
        let delta_pct = 100.0 * (ratio - 1.0);
        let regressed = delta_pct < -threshold_pct;
        let verdict = if regressed {
            "REGRESSED"
        } else if delta_pct > threshold_pct {
            "improved"
        } else {
            "ok"
        };
        println!(
            "| {} | {} | {:.3} | {:.3} | {:.4} | {:+.1}% | {verdict} |",
            key.0, key.1, old_s.gflops_min, new_s.gflops_min, ratio, delta_pct
        );
        per_bench.entry(key.0.as_str()).or_default().push(ratio);
        if regressed {
            regressions.push(format!(
                "{} n={}: {:.3} -> {:.3} GFLOP/s ({:+.1}%, min {:.3} -> {:.3} ms)",
                key.0, key.1, old_s.gflops_min, new_s.gflops_min, delta_pct, old_s.min_ms, new_s.min_ms
            ));
        }
    }

    let only_old: Vec<&Key> = old.keys().filter(|k| !new.contains_key(*k)).collect();
    let only_new: Vec<&Key> = new.keys().filter(|k| !old.contains_key(*k)).collect();
    if !only_old.is_empty() {
        println!("\nshapes only in {old_path}: {only_old:?}");
    }
    if !only_new.is_empty() {
        println!("shapes only in {new_path}: {only_new:?}");
    }

    println!("\n## per-bench geometric-mean ratio (new/old)\n");
    let mut all_ratios = Vec::new();
    for (bench, ratios) in &per_bench {
        println!("  {bench}: {:.4} over {} shapes", stats::geomean(ratios), ratios.len());
        all_ratios.extend_from_slice(ratios);
    }
    if all_ratios.is_empty() {
        return Err("no common (bench, n) shapes between the two files".into());
    }
    println!("  overall: {:.4} over {} shapes", stats::geomean(&all_ratios), all_ratios.len());

    if regressions.is_empty() {
        println!("\nno regressions beyond {threshold_pct}%");
        println!("BENCH DIFF OK");
        return Ok(ExitCode::SUCCESS);
    }
    println!("\n{} shape(s) regressed beyond {threshold_pct}%:", regressions.len());
    for r in &regressions {
        println!("  REGRESSION: {r}");
    }
    if waive {
        println!("WAIVED: regressions reported but not enforced (--waive)");
        println!("BENCH DIFF OK");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("BENCH DIFF FAILED");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold_pct = 10.0;
    let mut waive = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .expect("--threshold needs a non-negative percentage");
            }
            "--waive" => waive = true,
            other => files.push(other.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: bench_diff <old.json> <new.json> [--threshold PCT] [--waive]");
        return ExitCode::FAILURE;
    };
    match run(old_path, new_path, threshold_pct, waive) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
