//! Regenerates the generated catalog section of `ALGORITHMS.md` from
//! the live coefficient tables, compiled schedules, and trace probe —
//! nothing in the table is hand-maintained.
//!
//! ```sh
//! cargo run --example algorithm_catalog            # rewrite the section in place
//! cargo run --example algorithm_catalog -- --check # diff gate (scripts/verify.sh)
//! ```
//!
//! Every number is derived from the shipped [`strassen::FastAlgorithm`]
//! tables (rank, stability quantity, pass counts, workspace shape) or
//! *measured* from a traced `dgefmm` run; the measured flop totals are
//! asserted against the `opcount` generalized recurrence before a byte
//! is written, so a catalog that regenerates cleanly is also a catalog
//! whose claims held at run time.

use blas::Op;
use matrix::random;
use opcount::family::{bdpz_spec, family_flops, uniform_spec, FamilySpec};
use strassen::{dgefmm, required_workspace, trace, CutoffCriterion, Family, Scheme, StrassenConfig, Trace};

const BEGIN: &str = "<!-- BEGIN GENERATED: algorithm catalog (cargo run --example algorithm_catalog) -->";
const END: &str = "<!-- END GENERATED -->";

fn traced_run(cfg: &StrassenConfig, m: usize, k: usize, n: usize, beta: f64) -> Trace {
    let a = random::uniform::<f64>(m, k, 11);
    let b = random::uniform::<f64>(k, n, 22);
    let mut c = random::uniform::<f64>(m, n, 33);
    let (_, tr) = trace::capture(|| {
        dgefmm(cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), beta, c.as_mut());
    });
    tr
}

/// Two exactly divisible recursion levels per family above a τ = 4
/// simple cutoff (the same shapes `tests/family_engine.rs` pins).
fn reference_shape(fam: Family) -> (usize, usize, usize) {
    match fam {
        Family::F222 => (20, 20, 20),
        Family::F223 => (20, 20, 27),
        Family::F323 => (36, 20, 36),
        Family::F234 => (12, 18, 32),
        Family::F333 => (27, 27, 27),
    }
}

fn compiled_spec(fam: Family) -> FamilySpec {
    let sched = fam.compiled();
    let (dm, dk, dn) = fam.dims();
    let (a, b) = sched.staging_add_passes();
    uniform_spec(
        (dm as u128, dk as u128, dn as u128),
        fam.rank() as u128,
        a as u128,
        b as u128,
        sched.write_add_passes(true) as u128,
        sched.write_add_passes(false) as u128,
    )
}

/// The per-family table: identity, rank, stability, per-level pass
/// structure, workspace, and a live traced flop count cross-checked
/// against the generalized recurrence.
fn family_table() -> String {
    let mut out = String::new();
    out.push_str(
        "| family | base case | rank R | trivial | q (stability) | adds/level (β=0 / β≠0) | workspace bound | flops @ ref (β=0) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for fam in Family::ALL {
        let alg = fam.algorithm();
        let sched = fam.compiled();
        let (dm, dk, dn) = fam.dims();
        let (m, k, n) = reference_shape(fam);
        // Measure the compiled executor live (F222 runs its legacy
        // schedules in production, so probe the compiled numbers from
        // the schedule itself and trace the non-F222 dispatch path).
        let flops = if fam == Family::F222 {
            let cfg = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 4 }).fused(false);
            traced_run(&cfg, m, k, n, 0.0).total_flops()
        } else {
            let cfg =
                StrassenConfig::dgefmm().family(fam).cutoff(CutoffCriterion::Simple { tau: 4 }).fused(false);
            let tr = traced_run(&cfg, m, k, n, 0.0);
            let cut = |m: u128, k: u128, n: u128, _: bool| m <= 4 || k <= 4 || n <= 4;
            let want = family_flops(&compiled_spec(fam), m as u128, k as u128, n as u128, true, &cut);
            assert_eq!(tr.total_flops(), want, "{fam:?}: trace diverged from the recurrence");
            tr.total_flops()
        };
        let x = if sched.needs_x() { format!("mk/{}", dm * dk - 1) } else { "–".into() };
        let y = if sched.needs_y() { format!("kn/{}", dk * dn - 1) } else { "–".into() };
        out.push_str(&format!(
            "| `{fam:?}` | ⟨{dm},{dk},{dn}⟩ | {} | {} | {} | {} / {} | {x} + {y} + mn/{} | {flops} ({m}×{k}×{n}) |\n",
            alg.rank(),
            dm * dk * dn,
            alg.stability_q(),
            sched.add_passes(true),
            sched.add_passes(false),
            dm * dn - 1,
        ));
    }
    out
}

/// The ⟨2,2,2⟩ schedule table: per-level add passes, child β classes,
/// and the measured recursion-total workspace high-water at a reference
/// order, cross-checked against the analytic requirement.
fn schedule_table() -> String {
    let m = 128usize;
    let cutoff = CutoffCriterion::Simple { tau: 8 };
    let mut out = String::new();
    out.push_str("| schedule | adds/level | children (β=0 / β=1) | total workspace bound | measured high-water (128³, τ=8) |\n");
    out.push_str("|---|---|---|---|---|\n");
    let rows: [(&str, Scheme, f64, bool, &str, &str, &str); 5] = [
        ("STRASSEN1 (β=0)", Scheme::Strassen1, 0.0, true, "15", "7 / 0", "(m·max(k,n) + kn)/3"),
        ("STRASSEN2", Scheme::Strassen2, 1.0, false, "15", "2 / 5", "(mk + kn + mn)/3"),
        ("seven-temp", Scheme::SevenTemp, 0.0, true, "15", "7 / 0", "(4mk + 4kn + 7mn)/3"),
        ("BDPZ two-temp (β=0)", Scheme::TwoTemp, 0.0, true, "13", "4 / 3", "(mk + kn)/3"),
        ("BDPZ in-place (any β)", Scheme::InPlace, 1.0, false, "20", "0 / 7", "(mk + kn)/3"),
    ];
    for (name, scheme, beta, beta_zero, adds, children, bound) in rows {
        let cfg = StrassenConfig::dgefmm().scheme(scheme).cutoff(cutoff).fused(false);
        let tr = traced_run(&cfg, m, m, m, beta);
        let need = required_workspace(&cfg, m, m, m, beta_zero);
        assert_eq!(tr.ws_high_water, need, "{name}: high-water != analytic requirement");
        out.push_str(&format!(
            "| {name} | {adds} | {children} | {bound} | {} elements = {:.3}·m² |\n",
            tr.ws_high_water,
            tr.ws_high_water as f64 / (m * m) as f64
        ));
    }
    out
}

/// One BDPZ flop sanity line: the two-class recurrence evaluated at the
/// schedule-table reference, shown so the catalog records the add-pass
/// overhead the memory saving costs.
fn bdpz_note() -> String {
    let cut = |m: u128, k: u128, n: u128, _: bool| m <= 8 || k <= 8 || n <= 8;
    let bdpz = family_flops(&bdpz_spec(), 128, 128, 128, true, &cut);
    let wino = family_flops(&uniform_spec((2, 2, 2), 7, 4, 4, 7, 7), 128, 128, 128, true, &cut);
    format!(
        "At the same reference (128³, τ = 8, β = 0) the BDPZ two-temp schedule executes\n\
         {bdpz} model flops against the classic Winograd recursion's {wino} — the\n\
         `(mk + kn)/3` workspace bound is bought with {} extra adds ({:.2}%).\n",
        bdpz - wino,
        100.0 * (bdpz - wino) as f64 / wino as f64
    )
}

fn generated_section() -> String {
    let mut s = String::new();
    s.push_str(BEGIN);
    s.push('\n');
    s.push('\n');
    s.push_str("### Family catalog (generated)\n\n");
    s.push_str(&family_table());
    s.push('\n');
    s.push_str(
        "`q` is the Higham stability quantity `max_ij Σ_r |w_rij|·‖u_r‖₁·‖v_r‖₁` — the\n\
         per-level error growth factor the accuracy crate's envelopes use. Workspace\n\
         bounds are recursion totals in elements (each per-level block shrinks by its\n\
         block-count factor, hence the geometric denominators). The flops column is\n\
         *measured* by the trace probe on the reference problem and asserted equal to\n\
         the generalized rank-R recurrence (`opcount::family`) during regeneration.\n\n",
    );
    s.push_str("### ⟨2,2,2⟩ schedule catalog (generated)\n\n");
    s.push_str(&schedule_table());
    s.push('\n');
    s.push_str(&bdpz_note());
    s.push('\n');
    s.push_str(END);
    s
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/ALGORITHMS.md");
    let doc = std::fs::read_to_string(path).expect("ALGORITHMS.md not found");
    let begin = doc.find(BEGIN).expect("BEGIN marker missing from ALGORITHMS.md");
    let end = doc.find(END).map(|e| e + END.len()).expect("END marker missing from ALGORITHMS.md");
    assert!(begin < end, "catalog markers out of order");
    let fresh = format!("{}{}{}", &doc[..begin], generated_section(), &doc[end..]);
    if check {
        if fresh != doc {
            eprintln!("ALGORITHMS.md catalog is stale: run `cargo run --example algorithm_catalog`");
            std::process::exit(1);
        }
        println!("algorithm_catalog --check: ALGORITHMS.md is up to date (byte-for-byte)");
    } else if fresh == doc {
        println!("algorithm_catalog: ALGORITHMS.md already up to date");
    } else {
        std::fs::write(path, fresh).expect("failed to write ALGORITHMS.md");
        println!("algorithm_catalog: regenerated the catalog section of ALGORITHMS.md");
    }
}
