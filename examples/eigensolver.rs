//! The paper's application demo (Section 4.4): an ISDA symmetric
//! eigensolver whose kernel is matrix multiplication, run once with
//! conventional DGEMM and once with DGEFMM.
//!
//! ```sh
//! cargo run --release --example eigensolver [order]
//! ```

use blas::level3::GemmConfig;
use eigen::backend::{GemmBackend, MatMul, StrassenBackend, TimingBackend};
use eigen::isda::{isda_eigen, IsdaOptions};
use matrix::random;
use std::time::Instant;
use strassen::StrassenConfig;

fn run_arm(label: &str, backend: &TimingBackend<impl MatMul>, a: &matrix::Matrix<f64>, truth: &[f64]) {
    let opts = IsdaOptions::default();
    let t0 = Instant::now();
    let e = isda_eigen(a, backend, &opts);
    let total = t0.elapsed().as_secs_f64();
    let worst = e.values.iter().zip(truth).map(|(got, want)| (got - want).abs()).fold(0.0f64, f64::max);
    println!(
        "{label}: total {total:.3}s   MM {:.3}s in {} calls   worst eigenvalue error {worst:.2e}",
        backend.elapsed_seconds(),
        backend.calls()
    );
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);

    // Symmetric matrix with a known, well-spread spectrum so we can
    // check the answer exactly.
    let truth: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - (n as f64) * 0.2).collect();
    let a = random::symmetric_with_spectrum::<f64>(&truth, 42);
    println!("ISDA eigensolver, order {n} (Jacobi base case below {})", IsdaOptions::default().base_size);

    let dgemm = TimingBackend::new(GemmBackend(GemmConfig::blocked()));
    run_arm("DGEMM ", &dgemm, &a, &truth);

    let dgefmm = TimingBackend::new(StrassenBackend::new(StrassenConfig::with_square_cutoff(128)));
    run_arm("DGEFMM", &dgefmm, &a, &truth);

    println!("(the swap is one line: the MatMul backend — exactly the paper's 'rename DGEMM to DGEFMM')");
}
