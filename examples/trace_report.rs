//! Regenerate the measured sections of EXPERIMENTS.md from live traces.
//!
//! ```sh
//! cargo run --release --example trace_report
//! ```
//!
//! The probe subsystem ([`strassen::probe`]) records what a `dgefmm`
//! call actually did — leaf GEMMs, add passes, peel fixups, workspace
//! high-water — and [`strassen::probe::report`] renders those traces in
//! the exact table formats EXPERIMENTS.md uses:
//!
//! * **Table 1** (temporary memory): the workspace high-water mark of a
//!   traced 512³ multiply per schedule, as multiples of m². This table
//!   is deterministic and reproduces the recorded EXPERIMENTS.md numbers
//!   byte for byte.
//! * **Table 4** (cutoff-criteria comparison): traced wall-time ratios
//!   on problems where the criteria disagree. Timings are noisy on a
//!   shared host; the *structure* (labels, sample counts, quartile
//!   layout) is what the document pins.
//! * A per-level breakdown and phase timing of one representative call —
//!   the ad-hoc views `probe::report` adds beyond the paper's tables.

use blas::Op;
use matrix::{random, Matrix};
use rng::Rng;
use std::time::Instant;
use strassen::comparators::dgemmw::dgemmw_temp_elements;
use strassen::probe::report::{
    per_level_markdown, phase_markdown, quartiles, ratio3, table1_markdown, table4_markdown, Table1Row,
    Table4Row,
};
use strassen::{dgefmm, trace, CutoffCriterion, Scheme, StrassenConfig, Trace};

/// Run one traced `dgefmm` call on an m³ uniform-random problem.
fn traced(cfg: &StrassenConfig, m: usize, k: usize, n: usize, beta: f64) -> Trace {
    let a = random::uniform::<f64>(m, k, 101);
    let b = random::uniform::<f64>(k, n, 102);
    let mut c = random::uniform::<f64>(m, n, 103);
    let (_, tr) = trace::capture(|| {
        dgefmm(cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), beta, c.as_mut());
    });
    tr
}

/// Measured workspace high-water of a traced m³ run, as a multiple of m².
fn measured_ratio(cfg: &StrassenConfig, m: usize, beta: f64) -> f64 {
    traced(cfg, m, m, m, beta).ws_high_water as f64 / (m * m) as f64
}

/// Table 1 — temporary memory at m = 512, cutoff 64 (EXPERIMENTS.md's
/// recorded configuration). The formula rows and the DGEMMW analog come
/// from `opcount`/`comparators`; the schedule rows are *measured* arena
/// high-water marks.
fn table1() {
    let m = 512usize;
    let classic = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 64 }).fused(false);
    let m2 = (m * m) as f64;

    let s1 = classic.scheme(Scheme::Strassen1);
    let s2 = classic.scheme(Scheme::Strassen2);
    let dgemmw = |beta_zero| dgemmw_temp_elements(64, m, m, m, beta_zero) as f64 / m2;

    let rows = [
        Table1Row {
            label: "CRAY SGEMMS (formula)".into(),
            cells: ["2.333".into(), "—".into(), "2.333".into(), "—".into()],
        },
        Table1Row {
            label: "IBM DGEMMS (formula)".into(),
            cells: ["1.400".into(), "—".into(), "n/a".into(), "—".into()],
        },
        Table1Row {
            label: "DGEMMW".into(),
            cells: [
                "0.667".into(),
                format!("{} (analog)", ratio3(dgemmw(true))),
                "1.667".into(),
                format!("{} (analog)", ratio3(dgemmw(false))),
            ],
        },
        Table1Row {
            label: "STRASSEN1".into(),
            cells: [
                "0.667".into(),
                ratio3(measured_ratio(&s1, m, 0.0)),
                "2.0".into(),
                format!("{}*", ratio3(measured_ratio(&s1, m, 1.0))),
            ],
        },
        Table1Row {
            label: "STRASSEN2".into(),
            cells: [
                "1.0".into(),
                ratio3(measured_ratio(&s2, m, 0.0)),
                "1.0".into(),
                ratio3(measured_ratio(&s2, m, 1.0)),
            ],
        },
        Table1Row {
            label: "**DGEFMM**".into(),
            cells: [
                "**0.667**".into(),
                format!("**{}**", ratio3(measured_ratio(&classic, m, 0.0))),
                "**1.0**".into(),
                format!("**{}**", ratio3(measured_ratio(&classic, m, 1.0))),
            ],
        },
    ];

    println!("## Table 1 — temporary memory (`table1`)\n");
    println!("Measured arena sizes at m = {m} (cutoff 64), as multiples of m²:\n");
    println!("{}", table1_markdown(&rows));
}

/// Time one `dgefmm` call (median of three) under `cfg`.
fn time_call(cfg: &StrassenConfig, m: usize, k: usize, n: usize) -> f64 {
    let a = random::uniform::<f64>(m, k, 7);
    let b = random::uniform::<f64>(k, n, 8);
    let mut times = [0.0f64; 3];
    for t in &mut times {
        let mut c = Matrix::<f64>::zeros(m, n);
        let start = Instant::now();
        dgefmm(cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        *t = start.elapsed().as_secs_f64();
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[1]
}

/// Sample shapes where `ours` and `theirs` disagree about recursing at
/// the top level, and return the time ratios t(ours)/t(theirs).
fn disagreement_ratios(
    ours: CutoffCriterion,
    theirs: CutoffCriterion,
    samples: usize,
    shape: impl Fn(&mut Rng) -> (usize, usize, usize),
) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(0xD15A);
    let mut ratios = Vec::with_capacity(samples);
    let mut guard = 0;
    while ratios.len() < samples && guard < 10_000 {
        guard += 1;
        let (m, k, n) = shape(&mut rng);
        if ours.should_stop(m, k, n) == theirs.should_stop(m, k, n) {
            continue;
        }
        let base = StrassenConfig::dgefmm();
        let t_ours = time_call(&base.cutoff(ours), m, k, n);
        let t_theirs = time_call(&base.cutoff(theirs), m, k, n);
        ratios.push(t_ours / t_theirs);
    }
    ratios
}

/// Table 4 — hybrid criterion (eq. 15) vs the simple (eq. 11) and scaled
/// (eq. 12) criteria on disagreement problems. Small sizes keep the
/// example quick; EXPERIMENTS.md's recorded run sampled up to 1700.
fn table4() {
    let hybrid = CutoffCriterion::Hybrid { tau: 96, tau_m: 48, tau_k: 48, tau_n: 48 };
    let simple = CutoffCriterion::Simple { tau: 96 };
    let higham = CutoffCriterion::HighamScaled { tau: 96 };

    // Shapes with one dimension at/below τ and the others well above it —
    // the paper's motivating disagreement region (Section 3.4).
    let thin = |rng: &mut Rng| {
        let small = 48 + 2 * (rng.bounded_u64(24) as usize);
        let large1 = 256 + 2 * (rng.bounded_u64(64) as usize);
        let large2 = 256 + 2 * (rng.bounded_u64(64) as usize);
        match rng.bounded_u64(3) {
            0 => (small, large1, large2),
            1 => (large1, small, large2),
            _ => (large1, large2, small),
        }
    };
    // Two dimensions large, the third in the band where eq. (12) still
    // recurses but eq. (15)'s rectangular condition declines — the
    // paper's follow-up row.
    let two_large = |rng: &mut Rng| {
        let edge = 44 + 2 * (rng.bounded_u64(12) as usize);
        let large1 = 320 + 2 * (rng.bounded_u64(48) as usize);
        let large2 = 320 + 2 * (rng.bounded_u64(48) as usize);
        (large1, edge, large2)
    };

    let rows: Vec<Table4Row> = [
        ("(15)/(11) simple", simple, 10, &thin as &dyn Fn(&mut Rng) -> (usize, usize, usize), "0.953"),
        ("(15)/(12) Higham", higham, 10, &thin, "1.002"),
        ("(15)/(12), two dims large", higham, 6, &two_large, "0.989"),
    ]
    .into_iter()
    .map(|(label, other, samples, shape, paper)| {
        let ratios = disagreement_ratios(hybrid, other, samples, shape);
        let average = ratios.iter().sum::<f64>() / ratios.len() as f64;
        Table4Row {
            label: label.into(),
            samples: ratios.len(),
            quartiles: quartiles(&ratios),
            average,
            paper: paper.into(),
        }
    })
    .collect();

    println!("## Table 4 — criteria comparison (`table4`)\n");
    println!("Ratios t(hybrid eq. 15)/t(other) on problems where the criteria disagree:\n");
    println!("{}", table4_markdown(&rows));
}

/// The probe's own views: per-level structure and phase timing of one
/// representative traced call.
fn representative_trace() {
    let cfg = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau: 32 }).fused(false);
    let tr = traced(&cfg, 257, 192, 129, 1.0);
    println!("## Per-level breakdown — 257×192×129, τ = 32, β = 1\n");
    println!("{}", per_level_markdown(&tr));
    println!("## Phase timing\n");
    println!("{}", phase_markdown(&tr));
    println!(
        "gemm calls: {}  splits: {}  peel fixups: {}/{}/{} (GER/GEMV/dot)  \
         high-water: {} elements",
        tr.gemm_calls(),
        tr.splits(),
        tr.ger_calls(),
        tr.gemv_calls(),
        tr.dot_calls(),
        tr.ws_high_water,
    );
}

fn main() {
    table1();
    table4();
    representative_trace();
}
