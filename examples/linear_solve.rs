//! Strassen-accelerated dense linear solve (the use case of the paper's
//! reference \[3\], Bailey, Lee & Simon): blocked LU with partial pivoting
//! whose trailing updates run through DGEMM or DGEFMM.
//!
//! ```sh
//! cargo run --release --example linear_solve [order]
//! ```

use blas::level3::GemmConfig;
use linsys::lu::lu_factor;
use matrix::{norms, random, Matrix};
use std::time::Instant;
use strassen::{GemmBackend, MatMul, StrassenBackend, StrassenConfig, TimingBackend};

fn residual(a: &Matrix<f64>, x: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    let n = a.nrows();
    let mut worst = 0.0f64;
    for c in 0..b.ncols() {
        for i in 0..n {
            let ax: f64 = (0..n).map(|p| a.at(i, p) * x.at(p, c)).sum();
            worst = worst.max((ax - b.at(i, c)).abs());
        }
    }
    worst
}

fn run(label: &str, backend: &TimingBackend<impl MatMul>, a: &Matrix<f64>, b: &Matrix<f64>, nb: usize) {
    let t0 = Instant::now();
    let f = lu_factor(a, nb, backend).expect("nonsingular");
    let total = t0.elapsed().as_secs_f64();
    let x = f.solve(b);
    println!(
        "{label}: factor {total:.3}s   ({:.3}s / {} calls in GEMM updates)   residual {:.2e}",
        backend.elapsed_seconds(),
        backend.calls(),
        residual(a, &x, b) / norms::inf_norm(a.as_ref())
    );
}

fn spd(n: usize, seed: u64) -> Matrix<f64> {
    // G·Gᵀ + n·I: comfortably positive definite.
    let g = random::uniform::<f64>(n, n, seed);
    Matrix::from_fn(n, n, |i, j| {
        let s: f64 = (0..n).map(|p| g.at(i, p) * g.at(j, p)).sum();
        if i == j {
            s + n as f64
        } else {
            s
        }
    })
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(768);
    let nb = 64;
    println!("blocked LU (block {nb}) of a random {n}x{n} system, 4 right-hand sides");

    let a = random::uniform::<f64>(n, n, 1);
    let b = random::uniform::<f64>(n, 4, 2);

    let dgemm = TimingBackend::new(GemmBackend(GemmConfig::blocked()));
    run("DGEMM ", &dgemm, &a, &b, nb);

    let dgefmm = TimingBackend::new(StrassenBackend::new(StrassenConfig::with_square_cutoff(128)));
    run("DGEFMM", &dgefmm, &a, &b, nb);

    println!("(the trailing update GEMMs are rank-{nb} — tall-thin shapes where the");
    println!(" hybrid cutoff criterion decides recursion case by case)");

    // The SPD sibling: blocked Cholesky through the same seam.
    let ns = n / 2;
    println!("\nblocked Cholesky of a random SPD {ns}x{ns} system");
    let a = spd(ns, 3);
    let t0 = Instant::now();
    let backend = TimingBackend::new(StrassenBackend::new(StrassenConfig::with_square_cutoff(128)));
    let f = linsys::cholesky::cholesky_factor(&a, nb, &backend).expect("SPD");
    println!(
        "DGEFMM: factor {:.3}s   log|det| = {:.2}   ({} GEMM updates)",
        t0.elapsed().as_secs_f64(),
        f.log_determinant(),
        backend.calls()
    );
}
