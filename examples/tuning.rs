//! Tune the cutoff criterion for this machine (the paper's Section 3.4
//! procedure), then use the tuned parameters on a rectangular problem
//! where the simple criterion would refuse to recurse.
//!
//! ```sh
//! cargo run --release --example tuning
//! ```

use blas::level3::GemmConfig;
use strassen::tuning::{self, SweepDim};
use strassen::CutoffCriterion;

fn main() {
    let gemm = GemmConfig::blocked();
    let reps = 3;

    // Square crossover sweep (coarse, for demonstration; the experiment
    // harness sweeps finer).
    let square_sizes: Vec<usize> = (64..=448).step_by(64).collect();
    let square = tuning::measure_square_cutoff(&gemm, &square_sizes, reps);
    println!("square sweep (ratio > 1 ⇒ one Strassen level beats DGEMM):");
    for s in &square.samples {
        println!("  m = {:>4}: {:.3}", s.size, s.ratio);
    }
    println!("chosen square cutoff tau = {}", square.tau);

    // Rectangular sweeps: two dimensions fixed large, one varies.
    let rect_sizes: Vec<usize> = (32..=224).step_by(48).collect();
    let fixed = 512;
    let tau_m = tuning::measure_rect_param(&gemm, SweepDim::M, fixed, &rect_sizes, reps).tau;
    let tau_k = tuning::measure_rect_param(&gemm, SweepDim::K, fixed, &rect_sizes, reps).tau;
    let tau_n = tuning::measure_rect_param(&gemm, SweepDim::N, fixed, &rect_sizes, reps).tau;
    println!("rectangular parameters: tau_m = {tau_m}, tau_k = {tau_k}, tau_n = {tau_n}");

    let tuned = tuning::TunedParameters { tau: square.tau, tau_m, tau_k, tau_n };
    let hybrid = tuned.criterion();
    let simple = CutoffCriterion::Simple { tau: square.tau };

    // The paper's motivating shape: one dimension below tau, others large.
    let (m, k, n) = (tau_m + tau_m / 2, 2 * square.tau, 2 * square.tau);
    println!("\nproblem {m}x{k}x{n} (m below the square cutoff {}):", square.tau);
    println!("  simple criterion (eq. 11) recurses : {}", !simple.should_stop(m, k, n));
    println!("  hybrid criterion (eq. 15) recurses : {}", !hybrid.should_stop(m, k, n));

    let t_simple = tuning::crossover_ratio(&gemm, m, k, n, reps);
    println!("  measured one-level speedup on it    : {:.3}x (ratio DGEMM / one-level Strassen)", t_simple);
}
