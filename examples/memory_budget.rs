//! Memory-budget tour: what each Strassen schedule costs in temporary
//! storage, measured from the workspace accounting (paper Table 1).
//!
//! ```sh
//! cargo run --release --example memory_budget [order]
//! ```

use strassen::workspace::{resolve_scheme, ResolvedScheme};
use strassen::{required_workspace, CutoffCriterion, Scheme, StrassenConfig};

fn main() {
    let m: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let tau = 64usize;
    let m2 = (m * m) as f64;
    println!("temporary storage to multiply two {m}x{m} matrices (cutoff {tau}):\n");
    println!("{:<34} {:>14} {:>10} {:>12}", "schedule", "elements", "x m^2", "MiB (f64)");

    let base = StrassenConfig::dgefmm().cutoff(CutoffCriterion::Simple { tau });
    let rows: [(&str, StrassenConfig, bool); 6] = [
        ("STRASSEN1, beta = 0", base.scheme(Scheme::Strassen1), true),
        ("STRASSEN1, beta != 0", base.scheme(Scheme::Strassen1), false),
        ("STRASSEN2 (any beta)", base.scheme(Scheme::Strassen2), false),
        ("seven-temp (parallelizable)", base.scheme(Scheme::SevenTemp), true),
        ("DGEFMM auto, beta = 0", base, true),
        ("DGEFMM auto, beta != 0", base, false),
    ];
    for (name, cfg, beta_zero) in rows {
        let elems = required_workspace(&cfg, m, m, m, beta_zero);
        println!(
            "{name:<34} {elems:>14} {:>10.3} {:>12.1}",
            elems as f64 / m2,
            (elems * 8) as f64 / (1024.0 * 1024.0)
        );
    }

    println!("\npaper Table 1 square-case bounds: 2m^2/3 (beta=0), m^2 (general),");
    println!("vs 7m^2/3 for CRAY SGEMMS and 5m^2/3 for DGEMMW's general case.");
    println!(
        "\nresolved schedule for beta = 0: {:?}; for beta != 0: {:?}",
        resolve_scheme(&base, true),
        resolve_scheme(&base, false)
    );
    assert_eq!(resolve_scheme(&base, true), ResolvedScheme::Strassen1BetaZero);
    assert_eq!(resolve_scheme(&base, false), ResolvedScheme::Strassen2);
}
