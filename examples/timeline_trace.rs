//! Record an execution timeline of a parallel DGEFMM run and export it
//! as Chrome trace-event JSON for Perfetto.
//!
//! ```sh
//! cargo run --release --example timeline_trace            # n=1024, depth 2
//! cargo run --release --example timeline_trace -- --n 512 --depth 1
//! ```
//!
//! The run uses the task-DAG scheduler on a ≥ 4-worker pool. The
//! recorded timeline is exported to `results/timeline_trace.json`; load
//! that file at <https://ui.perfetto.dev> (or `chrome://tracing`) to see
//! one lane per worker, a duration slice per DAG task (named `L<level>:s1`
//! … `L<level>:c22`), flow arrows along the seven-temp dependency edges,
//! instants for steals/parks, and counter tracks for queue depth and the
//! workspace high-water mark.
//!
//! The example is also an executable acceptance check. Before printing
//! its OK marker it asserts:
//!
//! * the export re-parses with `testkit::json` (strict: duplicate keys,
//!   non-finite numbers, and trailing data all fail);
//! * every worker has a named lane, B/E events pair, and the trace holds
//!   at least 7 task slices per parallel recursion level (the actual
//!   count is 21 per seven-temp DAG instance);
//! * one flow arrow per recorded DAG dependency edge (25 per instance:
//!   4 sum-chain + 8 product←operand + 13 combine);
//! * recording overhead stays within the 5% gate, measured as min-of-k
//!   tracing-on vs tracing-off (`TIMELINE_NO_GUARD=1` demotes a noisy
//!   failure to a loud warning).

use blas::Op;
use matrix::{random, Matrix};
use std::time::Instant;
use strassen::probe::timeline::{self, Timeline};
use strassen::{dgefmm, trace, CutoffCriterion, Scheduler, Scheme, StrassenConfig};
use testkit::json::Json;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} needs an integer, got {v:?}")))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = parse_flag(&args, "--n", 1024);
    let depth = parse_flag(&args, "--depth", 2);

    // The acceptance shape needs real parallelism underneath: size the
    // pool *before* anything starts it (oversubscribing a small host is
    // fine — this run is about structure, not throughput).
    if pool::set_num_threads(4).is_err() {
        eprintln!("note: pool already running with {} workers", pool::current_num_threads());
    }
    let workers = pool::current_num_threads();

    // Classic (non-fused) schedules so every parallel level actually
    // runs a seven-temp DAG instance — the fused last-level kernels
    // would swallow the bottom of the recursion into leaf tasks.
    let tau = (n >> depth).max(8);
    let cfg = StrassenConfig {
        parallel_depth: depth,
        ..StrassenConfig::dgefmm()
            .scheme(Scheme::SevenTemp)
            .scheduler(Scheduler::TaskDag)
            .cutoff(CutoffCriterion::Simple { tau })
            .fused(false)
    };
    let a = random::uniform::<f64>(n, n, 71);
    let b = random::uniform::<f64>(n, n, 72);
    let multiply = || {
        let mut c = Matrix::<f64>::zeros(n, n);
        dgefmm(&cfg, 1.0, Op::NoTrans, a.as_ref(), Op::NoTrans, b.as_ref(), 0.0, c.as_mut());
        c
    };

    // Warm the pool and the arena, then record one traced run (with a
    // TraceProbe riding along for the workspace high-water counter).
    let _ = multiply();
    let ((_, probe_trace), tl): ((Matrix<f64>, strassen::Trace), Timeline) =
        timeline::record(|| trace::capture(multiply));

    let structure = tl.structure();
    let per_level = tl.per_level_task_counts();
    println!(
        "recorded n={n} depth={depth} on {workers} workers: {} events across {} lanes \
         ({} dropped), {} task slices, {} DAG edges",
        tl.all_events().count(),
        tl.lanes.len(),
        tl.total_dropped(),
        tl.duration_events(),
        tl.edges.len(),
    );
    for (level, tasks) in &per_level {
        println!("  level {level}: {tasks} tagged tasks");
    }

    // Acceptance shape: every parallel level contributes at least its 7
    // products (a full seven-temp DAG instance contributes 21 tasks and
    // 25 edges).
    assert!(tl.total_dropped() == 0, "ring capacity too small for this run — raise STRASSEN_RING_CAP");
    for level in 0..depth as u8 {
        let tasks = per_level.get(&level).copied().unwrap_or(0);
        let instances = 7u64.pow(level as u32);
        assert!(
            tasks >= 7 * instances,
            "level {level}: {tasks} tagged tasks < 7 per DAG instance ({instances} instances)"
        );
    }
    assert!(structure.edges.values().sum::<u64>() >= 25, "seven-temp DAG edges missing");

    // Export and re-validate with the independent strict parser.
    let json_text = timeline::chrome_trace_json(&tl, Some(probe_trace.ws_high_water as u64));
    let doc = Json::parse(&json_text).expect("chrome trace must parse strictly");
    let events = doc.get("traceEvents").and_then(Json::items).expect("traceEvents array");
    let count = |ph: &str| events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph)).count();
    let lanes = events.iter().filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name")).count();
    assert!(lanes >= workers, "one named lane per worker: {lanes} < {workers}");
    assert_eq!(count("B"), count("E"), "duration events must pair");
    assert!(count("B") >= tl.duration_events(), "every Start becomes a B slice");
    assert_eq!(count("s"), count("f"), "flow events must pair");
    assert_eq!(count("s"), tl.edges.len(), "one flow arrow per recorded DAG edge");
    assert!(json_text.contains("queue_depth") && json_text.contains("arena_high_water"));

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/timeline_trace.json", &json_text).expect("write trace");
    println!(
        "wrote results/timeline_trace.json ({} bytes, {} trace events) — open at ui.perfetto.dev",
        json_text.len(),
        events.len(),
    );

    // Overhead gate: tracing off vs on, min-of-k interleaved.
    let reps = 3;
    let (mut off_ns, mut on_ns) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        let _ = multiply();
        off_ns = off_ns.min(t.elapsed().as_nanos());
        let t = Instant::now();
        let (_, _tl) = timeline::record(multiply);
        on_ns = on_ns.min(t.elapsed().as_nanos());
    }
    let overhead = on_ns as f64 / off_ns as f64;
    println!("recording overhead: {:.2}% (min-of-{reps}, gate 5%)", 100.0 * (overhead - 1.0));
    if overhead > 1.05 {
        let msg = format!("timeline recording overhead {:.2}% exceeds the 5% gate", 100.0 * (overhead - 1.0));
        if std::env::var_os("TIMELINE_NO_GUARD").is_some() {
            println!("WAIVED: {msg} (TIMELINE_NO_GUARD set)");
        } else {
            panic!("{msg} — rerun or set TIMELINE_NO_GUARD=1 on a noisy host");
        }
    }
    println!("TIMELINE TRACE OK");
}
